//! Table-layout system tests: the layout matrix (every layout × every
//! dialect × every paper dataset, CPU-oracle bit-equal under the full
//! sanitizer), the tier-1 load-factor gate, and the acceptance test for
//! the iceberg backyard's real headroom — a workload whose violated slot
//! estimate pushes the linear layout into the grown-reserve escalation
//! ladder completes fault-free on iceberg.

use locassm::core::io::Dataset;
use locassm::core::{assemble_all, AssemblyConfig, ContigJob, Read, RetryPolicy};
use locassm::kernels::{run_local_assembly, GpuConfig, JobOutcome, TableLayoutKind};
use locassm::specs::DeviceId;
use locassm::workloads::paper_dataset;
use simt::{FaultPlan, SanitizerConfig};

const DEVICES: [DeviceId; 3] = [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550];

/// The full matrix: three dialects × four paper datasets × every table
/// layout, all checks enabled — zero sanitizer findings and extensions
/// bit-identical to the CPU oracle everywhere. The oracle knows nothing
/// about table organization, which is exactly the point: a layout changes
/// probe order and capacity, never extensions (invariant 8).
#[test]
fn layout_matrix_is_oracle_exact_and_sanitizer_clean() {
    for k in [21usize, 33, 55, 77] {
        let ds = paper_dataset(k, 0.002, 7);
        let walk = GpuConfig::for_device(DeviceId::A100).walk;
        let cpu = assemble_all(
            &ds.jobs,
            &AssemblyConfig { k, walk, retry: RetryPolicy::none() },
            true,
        );
        for device in DEVICES {
            for layout in TableLayoutKind::ALL {
                let mut cfg = GpuConfig::for_device(device);
                cfg.layout = layout;
                cfg.sanitize = SanitizerConfig::all();
                let run = run_local_assembly(&ds, &cfg);
                assert!(
                    run.san.is_clean(),
                    "k={k} {device} layout={layout}: findings {:?}",
                    run.san.findings
                );
                assert_eq!(
                    run.extensions, cpu,
                    "k={k} {device} layout={layout}: CPU oracle mismatch"
                );
                assert!(run.outcomes.iter().all(|o| o.succeeded()), "k={k} {layout}");
            }
        }
    }
}

/// Aggregate staged slots and distinct keys over every job side the
/// launch engine runs — the host-side view of each layout's capacity.
fn capacity(ds: &Dataset, layout: TableLayoutKind) -> (u64, u64) {
    let lay = layout.as_layout();
    let mut slots = 0u64;
    let mut distinct = 0u64;
    for job in &ds.jobs {
        if job.contig.len() < ds.k {
            continue;
        }
        for reads in [&job.right_reads, &job.left_reads] {
            if reads.is_empty() {
                continue;
            }
            let ins: usize = reads.iter().map(|r| r.kmer_count(ds.k)).sum();
            slots += lay.geometry(ins, 1, 0).expect("dataset insertions fit u32").slots as u64;
            let mut keys = std::collections::HashSet::new();
            for r in reads {
                for w in r.seq.windows(ds.k) {
                    keys.insert(w);
                }
            }
            distinct += keys.len() as u64;
        }
    }
    (slots, distinct)
}

/// Tier-1 load-factor gate. On a repeat-heavy dataset (each read list
/// duplicated 4×, so insertions ≫ distinct keys) the bucketed and
/// iceberg layouts hold the same content in fewer slots than linear —
/// a strictly higher sustained load factor — without a single
/// `HashTableFull`, and with bit-identical extensions.
#[test]
fn bucketed_and_iceberg_sustain_higher_load_factor_fault_free() {
    let mut ds = paper_dataset(21, 0.002, 7);
    for job in &mut ds.jobs {
        let r = job.right_reads.clone();
        let l = job.left_reads.clone();
        for _ in 0..3 {
            job.right_reads.extend(r.iter().cloned());
            job.left_reads.extend(l.iter().cloned());
        }
    }

    let load = |layout: TableLayoutKind| {
        let (slots, distinct) = capacity(&ds, layout);
        assert!(slots > 0 && distinct > 0);
        distinct as f64 / slots as f64
    };
    let linear = load(TableLayoutKind::LinearProbe);
    let bucketed = load(TableLayoutKind::Bucketed);
    let iceberg = load(TableLayoutKind::Iceberg);
    assert!(
        bucketed > linear,
        "bucketed load factor {bucketed:.3} must beat linear {linear:.3}"
    );
    assert!(
        iceberg > linear,
        "iceberg load factor {iceberg:.3} must beat linear {linear:.3}"
    );

    let mut baseline = None;
    for layout in TableLayoutKind::ALL {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.layout = layout;
        let run = run_local_assembly(&ds, &cfg);
        assert!(
            run.outcomes.iter().all(|o| *o == JobOutcome::Ok),
            "layout {layout}: the tighter table must hold without HashTableFull"
        );
        match &baseline {
            None => baseline = Some(run.extensions),
            Some(b) => assert_eq!(&run.extensions, b, "layout {layout}: extensions"),
        }
    }
}

/// A deterministic pseudo-random DNA sequence (fixed data, no RNG).
fn scrambled_seq(len: usize) -> Vec<u8> {
    let mut x = 0x2545_f491u32;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            b"ACGT"[(x % 4) as usize]
        })
        .collect()
}

/// Acceptance test for the iceberg backyard: the same violated slot
/// estimate (table squeezed to a third) that pushes the linear layout
/// into the grown-reserve escalation ladder is absorbed by the iceberg
/// backyard — every job `Ok`, no retries, extensions bit-identical to
/// the clean run. Grown-reserve escalation has become a last resort.
#[test]
fn iceberg_backyard_absorbs_what_escalates_linear() {
    let seq = scrambled_seq(100);
    let job = ContigJob::new(0, seq[..21].to_vec(), vec![Read::with_uniform_qual(&seq, b'I')], vec![]);
    let ds = Dataset::new(21, vec![job]);

    let run = |layout: TableLayoutKind, squeeze: bool| {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.layout = layout;
        if squeeze {
            cfg.fault = Some(FaultPlan::table_squeeze(0, 3));
        }
        run_local_assembly(&ds, &cfg)
    };

    let clean = run(TableLayoutKind::LinearProbe, false);
    assert_eq!(clean.outcomes[0], JobOutcome::Ok);

    // Linear: the squeezed table overflows, the launch layer escalates.
    let linear = run(TableLayoutKind::LinearProbe, true);
    assert_eq!(
        linear.outcomes[0],
        JobOutcome::Recovered { attempts: 1 },
        "the squeezed linear table must enter the grown-reserve ladder"
    );

    // Iceberg: the backyard absorbs the overflow — no fault, no retry.
    let iceberg = run(TableLayoutKind::Iceberg, true);
    assert_eq!(
        iceberg.outcomes[0],
        JobOutcome::Ok,
        "the iceberg backyard must absorb the same violated estimate"
    );
    assert_eq!(iceberg.extensions, clean.extensions, "fault-free and bit-exact");
}

/// Tier-1 acceptance for in-kernel incremental resizing: the same
/// long-tail workload whose squeezed slot estimate pushes the linear
/// layout into the grown-reserve escalation ladder completes with *zero*
/// escalation attempts once resizing is armed — the warp grows the table
/// past its high-water mark mid-insert instead of faulting
/// `HashTableFull`. Every layout stays `Ok` (not `Recovered`), and
/// extensions are bit-identical to the unsqueezed clean run.
#[test]
fn in_kernel_resize_retires_the_escalation_ladder() {
    let seq = scrambled_seq(100);
    let job = ContigJob::new(0, seq[..21].to_vec(), vec![Read::with_uniform_qual(&seq, b'I')], vec![]);
    let ds = Dataset::new(21, vec![job]);

    let run = |layout: TableLayoutKind, squeeze: bool, resize: bool| {
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.layout = layout;
        cfg.resize = resize;
        if squeeze {
            cfg.fault = Some(FaultPlan::table_squeeze(0, 3));
        }
        run_local_assembly(&ds, &cfg)
    };

    // Baseline: without resizing, the squeezed linear table escalates.
    let clean = run(TableLayoutKind::LinearProbe, false, false);
    assert_eq!(clean.outcomes[0], JobOutcome::Ok);
    let escalated = run(TableLayoutKind::LinearProbe, true, false);
    assert_eq!(
        escalated.outcomes[0],
        JobOutcome::Recovered { attempts: 1 },
        "without resizing the squeezed table must still enter the ladder"
    );

    // With resizing armed: zero Recovered outcomes anywhere.
    for layout in TableLayoutKind::ALL {
        let resized = run(layout, true, true);
        assert_eq!(
            resized.outcomes[0],
            JobOutcome::Ok,
            "layout {layout}: in-kernel resize must absorb the squeeze with zero \
             escalation attempts"
        );
        assert_eq!(
            resized.extensions, clean.extensions,
            "layout {layout}: resizing changes capacity, never extensions"
        );
    }
}

/// Regression for the tail-chunk clamp: a k-mer ending exactly at a
/// reads buffer end that is not a multiple of 4 (here 18 bytes, k = 15 —
/// the final chunk would read bytes 15..19 unclamped). Every dialect and
/// every layout must stay CPU-oracle-exact and sanitizer-clean while the
/// clamped loads keep modeled traffic inside the buffer.
#[test]
fn tail_kmer_at_unaligned_buffer_end_is_exact_everywhere() {
    let seq = scrambled_seq(18);
    let job = ContigJob::new(0, seq[..15].to_vec(), vec![Read::with_uniform_qual(&seq, b'I')], vec![]);
    let ds = Dataset::new(15, vec![job]);
    let walk = GpuConfig::for_device(DeviceId::A100).walk;
    let cpu = assemble_all(
        &ds.jobs,
        &AssemblyConfig { k: 15, walk, retry: RetryPolicy::none() },
        true,
    );
    for device in DEVICES {
        for layout in TableLayoutKind::ALL {
            let mut cfg = GpuConfig::for_device(device);
            cfg.layout = layout;
            cfg.sanitize = SanitizerConfig::all();
            let run = run_local_assembly(&ds, &cfg);
            assert!(run.san.is_clean(), "{device} {layout}: {:?}", run.san.findings);
            assert_eq!(run.extensions, cpu, "{device} {layout}");
        }
    }
}

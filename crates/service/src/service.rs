//! The deterministic service engine: a virtual-clock event loop that
//! admits requests, packs batches, runs them through the launch engine,
//! and settles every request into a terminal [`ServiceOutcome`].
//!
//! All time is *modeled* seconds — arrivals are part of the workload,
//! batch durations come from the launch engine's timing model
//! (`KernelProfile::seconds`), and backoff delays are pure arithmetic.
//! No wall clock, no randomness: the same workload under the same
//! [`ServiceConfig`] produces a bit-identical [`ServiceReport`], which is
//! what makes "replay the incident" a one-liner (invariant 9: admission
//! changes *when* a job runs, never its result).
//!
//! One loop iteration: (1) admit every arrival due at the current clock,
//! recording structured rejections; (2) release retries whose backoff has
//! elapsed; (3) sweep deadline-expired requests out of the queue; (4)
//! pack a batch by weighted fair-share under the footprint budget; (5)
//! run it as one launch-engine dataset and advance the clock by the
//! modeled duration; (6) settle each packed request — complete it, time
//! it out, park it for a backoff retry, or quarantine it. When nothing is
//! packable the clock jumps to the next arrival or retry-release instant.

use crate::batch::{request_footprint, BatchPolicy};
use crate::queue::{AdmissionQueue, QueueConfig, QueuedRequest};
use crate::request::{ExtensionRequest, ServiceOutcome, TimeoutStage};
use gpu_specs::DeviceId;
use locassm_core::io::Dataset;
use locassm_core::{BinningPolicy, ContigJob, RequestId};
use locassm_kernels::{run_local_assembly, GpuConfig, JobOutcome};
use simt::FaultPlan;
use std::collections::BTreeMap;

/// Service-level retry-with-backoff, layered *on top of* the kernel's
/// escalation ladder: a request whose run ends in a retryable
/// `JobOutcome::Failed` (the ladder already exhausted) is re-enqueued up
/// to `max_requeues` times, each release delayed by an exponentially
/// growing backoff on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequeuePolicy {
    /// Service-level re-enqueues before a still-failing request is
    /// quarantined. `0` quarantines on the first exhausted ladder.
    pub max_requeues: u32,
    /// Backoff before the first re-enqueue, modeled seconds.
    pub backoff_base: f64,
    /// Multiplier applied per successive re-enqueue.
    pub backoff_factor: f64,
}

impl RequeuePolicy {
    /// No service-level retries: the kernel ladder is the only recovery.
    pub fn none() -> Self {
        RequeuePolicy { max_requeues: 0, backoff_base: 0.0, backoff_factor: 1.0 }
    }

    /// Exponential backoff: `base * 2^n` before the `n`-th re-enqueue.
    pub fn exponential(max_requeues: u32, backoff_base: f64) -> Self {
        RequeuePolicy { max_requeues, backoff_base, backoff_factor: 2.0 }
    }

    /// The delay before re-enqueue number `requeues` (0-based).
    pub fn backoff_for(&self, requeues: u32) -> f64 {
        self.backoff_base * self.backoff_factor.powi(requeues as i32)
    }
}

impl Default for RequeuePolicy {
    fn default() -> Self {
        RequeuePolicy::exponential(2, 1e-3)
    }
}

/// Everything the engine needs to run a workload.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The launch-engine configuration batches run under. The service
    /// owns batching, so the engine's own binning policy is overridden
    /// to `Single` per packed batch.
    pub gpu: GpuConfig,
    /// Primary k-mer length for every request.
    pub k: usize,
    /// Admission limits: global depth, per-tenant quotas and weights.
    pub queue: QueueConfig,
    /// Batch packing limits (request cap, footprint byte budget).
    pub batch: BatchPolicy,
    /// Service-level retry-with-backoff policy.
    pub requeue: RequeuePolicy,
    /// Optional fault injection, with victim ids in *request uid* space
    /// ([`RequestId::uid`]): the engine retargets the plan onto each
    /// run's run-global job numbering just before launch, and feeds the
    /// victim's accumulated attempts back through `FaultPlan::consume`
    /// so a persistent fault's budget spans re-enqueues.
    pub fault: Option<FaultPlan>,
}

impl ServiceConfig {
    /// A default service for one device: 256-deep queue, default tenant
    /// quotas, L2-sized batches, two exponential-backoff requeues.
    pub fn for_device(device: DeviceId, k: usize) -> Self {
        let gpu = GpuConfig::for_device(device);
        let batch = BatchPolicy::for_gpu(&gpu);
        ServiceConfig {
            gpu,
            k,
            queue: QueueConfig::bounded(256),
            batch,
            requeue: RequeuePolicy::default(),
            fault: None,
        }
    }

    /// Attach a fault plan (victim ids in request-uid space).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }
}

/// One request's terminal record.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The request's deterministic identity.
    pub id: RequestId,
    /// Its arrival instant (modeled seconds).
    pub arrival: f64,
    /// How it ended.
    pub outcome: ServiceOutcome,
}

/// One packed batch as the engine ran it.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// 0-based launch order.
    pub seq: usize,
    /// Virtual instant the batch launched.
    pub started_at: f64,
    /// Virtual instant the batch's modeled execution finished.
    pub finished_at: f64,
    /// The packed requests, in fair-share dequeue order.
    pub requests: Vec<RequestId>,
    /// Summed request footprints, bytes (the packing cost charged
    /// against the byte budget).
    pub footprint: u64,
}

/// The engine's complete, replayable account of one workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceReport {
    /// Terminal record per request, sorted by request uid.
    pub records: Vec<RequestRecord>,
    /// Every batch, in launch order.
    pub batches: Vec<BatchRecord>,
    /// The virtual instant the last batch finished (0 for an empty
    /// workload).
    pub makespan: f64,
}

impl ServiceReport {
    /// The record for one request, if it reached a terminal outcome.
    pub fn outcome(&self, id: RequestId) -> Option<&ServiceOutcome> {
        self.records
            .binary_search_by_key(&id.uid(), |r| r.id.uid())
            .ok()
            .map(|i| &self.records[i].outcome)
    }

    /// Requests that completed with a result.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.completed()).count()
    }

    /// Requests refused at admission.
    pub fn rejected(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ServiceOutcome::Rejected { .. }))
            .count()
    }

    /// Requests whose deadline expired (queued or executed).
    pub fn timed_out(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ServiceOutcome::TimedOut { .. }))
            .count()
    }

    /// Requests quarantined as poison jobs.
    pub fn quarantined(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ServiceOutcome::Quarantined { .. }))
            .count()
    }

    /// Completed-request latencies (completion − arrival), ascending.
    pub fn latencies(&self) -> Vec<f64> {
        let mut lat: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| match r.outcome {
                ServiceOutcome::Completed { completed_at, .. } => Some(completed_at - r.arrival),
                _ => None,
            })
            .collect();
        lat.sort_by(f64::total_cmp);
        lat
    }

    /// Nearest-rank latency percentile over completed requests
    /// (`p` in [0, 100]); `None` when nothing completed.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        let lat = self.latencies();
        if lat.is_empty() {
            return None;
        }
        let rank = ((p / 100.0 * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        Some(lat[rank - 1])
    }

    /// Completed requests per modeled second of makespan.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed() as f64 / self.makespan
        } else {
            0.0
        }
    }
}

/// Replay the launch engine's run-global job numbering for a
/// single-batch run ({right, left} × job order, skipping sides the host
/// skips) and return the run-global id of `victim_pos`'s first launched
/// side — the id a retargeted fault plan must name.
fn run_job_id(jobs: &[ContigJob], min_k: usize, victim_pos: usize) -> Option<u64> {
    let mut id = 0u64;
    for side in 0..2usize {
        for (i, j) in jobs.iter().enumerate() {
            if j.contig.len() < min_k {
                continue;
            }
            let reads = if side == 0 { &j.right_reads } else { &j.left_reads };
            if reads.is_empty() {
                continue;
            }
            if i == victim_pos {
                return Some(id);
            }
            id += 1;
        }
    }
    None
}

/// Run a workload to completion and return its replayable report.
///
/// Pure function of `(requests, cfg)`: requests are processed in
/// `(arrival, uid)` order on a virtual clock, so two calls with the same
/// inputs return bit-identical reports.
pub fn run_service(requests: &[ExtensionRequest], cfg: &ServiceConfig) -> ServiceReport {
    let mut arrivals: Vec<ExtensionRequest> = requests.to_vec();
    arrivals.sort_by(|a, b| {
        a.arrival.total_cmp(&b.arrival).then(a.id.uid().cmp(&b.id.uid()))
    });

    let schedule = cfg.gpu.retry.schedule(cfg.k);
    let min_k = schedule.iter().copied().min().unwrap_or(cfg.k);

    let mut queue = AdmissionQueue::new(cfg.queue.clone());
    // Retries parked in backoff, sorted by (release instant, uid).
    let mut delayed: Vec<(f64, QueuedRequest)> = Vec::new();
    let mut records: BTreeMap<u64, RequestRecord> = BTreeMap::new();
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut next_arrival = 0usize;
    let mut clock = 0.0f64;
    let mut makespan = 0.0f64;

    loop {
        // (1) Admit every arrival due at the current clock.
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival <= clock {
            let req = arrivals[next_arrival].clone();
            next_arrival += 1;
            let id = req.id;
            let at = req.arrival;
            if let Err(reason) = queue.admit(QueuedRequest::new(req)) {
                records.insert(
                    id.uid(),
                    RequestRecord {
                        id,
                        arrival: at,
                        outcome: ServiceOutcome::Rejected { reason, at },
                    },
                );
            }
        }

        // (2) Release retries whose backoff has elapsed.
        let mut still_parked = Vec::with_capacity(delayed.len());
        for (ready, qr) in delayed.drain(..) {
            if ready <= clock {
                queue.requeue(qr);
            } else {
                still_parked.push((ready, qr));
            }
        }
        delayed = still_parked;

        // (3) Deadline sweep: queued and parked requests whose deadline
        // has passed time out without consuming further GPU time.
        for qr in queue.drop_expired(clock) {
            records.insert(
                qr.req.id.uid(),
                RequestRecord {
                    id: qr.req.id,
                    arrival: qr.req.arrival,
                    outcome: ServiceOutcome::TimedOut { stage: TimeoutStage::Queued, at: clock },
                },
            );
        }
        let mut keep = Vec::with_capacity(delayed.len());
        for (ready, qr) in delayed.drain(..) {
            if qr.expired(clock) {
                records.insert(
                    qr.req.id.uid(),
                    RequestRecord {
                        id: qr.req.id,
                        arrival: qr.req.arrival,
                        outcome: ServiceOutcome::TimedOut {
                            stage: TimeoutStage::Queued,
                            at: clock,
                        },
                    },
                );
            } else {
                keep.push((ready, qr));
            }
        }
        delayed = keep;

        // (4) Pack a batch: weighted fair share under the footprint
        // budget. The first request always fits (an oversized request
        // must still run — alone).
        let mut packed_bytes = 0u64;
        let mut first = true;
        let picked = queue.take_fair(cfg.batch.max_jobs, |qr| {
            let fp = request_footprint(&qr.req.job, &schedule, &cfg.gpu);
            if first || packed_bytes + fp <= cfg.batch.byte_budget {
                first = false;
                packed_bytes += fp;
                true
            } else {
                false
            }
        });

        if picked.is_empty() {
            // Nothing runnable now: jump to the next event, or finish.
            let next_t = match (
                arrivals.get(next_arrival).map(|r| r.arrival),
                delayed.first().map(|(t, _)| *t),
            ) {
                (Some(a), Some(r)) => a.min(r),
                (Some(a), None) => a,
                (None, Some(r)) => r,
                (None, None) => break,
            };
            clock = next_t.max(clock);
            continue;
        }

        // (5) Run the batch as one launch-engine dataset. The service is
        // the batcher, so the engine's own binning is forced to Single;
        // the fault plan (named in request-uid space) is retargeted onto
        // this run's job numbering and armed only when its victim is
        // actually aboard.
        let jobs: Vec<ContigJob> = picked.iter().map(|q| q.req.job.clone()).collect();
        let ds = Dataset::new(cfg.k, jobs);
        let mut gpu = cfg.gpu.clone();
        gpu.binning = BinningPolicy::Single;
        gpu.fault = None;
        if let Some(plan) = cfg.fault {
            if let Some(victim_uid) = plan.victim() {
                if let Some(pos) =
                    picked.iter().position(|q| q.req.id.uid() == victim_uid)
                {
                    if let Some(run_id) = run_job_id(&ds.jobs, min_k, pos) {
                        gpu.fault = plan
                            .consume(picked[pos].attempts_spent)
                            .map(|p| p.retargeted(victim_uid, run_id));
                    }
                }
            }
        }
        let out = run_local_assembly(&ds, &gpu);
        let finished = clock + out.profile.seconds();
        batches.push(BatchRecord {
            seq: batches.len(),
            started_at: clock,
            finished_at: finished,
            requests: picked.iter().map(|q| q.req.id).collect(),
            footprint: packed_bytes,
        });
        makespan = finished;

        // (6) Settle each packed request.
        for (i, mut qr) in picked.into_iter().enumerate() {
            let kernel = out.outcomes[i];
            qr.attempts_spent += 1 + kernel.attempts();
            let id = qr.req.id;
            let arrival = qr.req.arrival;
            if qr.deadline_at.is_some_and(|d| d < finished) {
                // The batch finished past the deadline: the late result
                // is discarded deterministically.
                records.insert(
                    id.uid(),
                    RequestRecord {
                        id,
                        arrival,
                        outcome: ServiceOutcome::TimedOut {
                            stage: TimeoutStage::Executed,
                            at: finished,
                        },
                    },
                );
                continue;
            }
            match kernel {
                JobOutcome::Failed { fault, .. } => {
                    if fault.retryable() && qr.requeues < cfg.requeue.max_requeues {
                        let ready = finished + cfg.requeue.backoff_for(qr.requeues);
                        qr.requeues += 1;
                        delayed.push((ready, qr));
                    } else {
                        records.insert(
                            id.uid(),
                            RequestRecord {
                                id,
                                arrival,
                                outcome: ServiceOutcome::Quarantined {
                                    fault,
                                    attempts: qr.attempts_spent,
                                    requeues: qr.requeues,
                                },
                            },
                        );
                    }
                }
                kernel => {
                    records.insert(
                        id.uid(),
                        RequestRecord {
                            id,
                            arrival,
                            outcome: ServiceOutcome::Completed {
                                result: out.extensions[i].clone(),
                                kernel,
                                requeues: qr.requeues,
                                completed_at: finished,
                            },
                        },
                    );
                }
            }
        }
        delayed.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then(a.1.req.id.uid().cmp(&b.1.req.id.uid()))
        });
        clock = finished;
    }

    ServiceReport { records: records.into_values().collect(), batches, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::TenantQuota;
    use crate::request::RejectReason;
    use locassm_core::{Read, TenantId};

    fn k() -> usize {
        13
    }

    /// A job whose reads genuinely extend the contig (so the kernel
    /// stages a real table and the walk makes progress).
    fn extending_job(id: u32) -> ContigJob {
        let contig = b"ACGTTGCAAGGCTTAGGCATT".to_vec();
        let mut seq = contig.clone();
        seq.extend_from_slice(b"CCGGATACCGGT");
        let reads = vec![
            Read::with_uniform_qual(&seq[3..], b'I'),
            Read::with_uniform_qual(&seq[6..], b'I'),
            Read::with_uniform_qual(&seq[9..], b'I'),
        ];
        ContigJob::new(id, contig, reads.clone(), reads)
    }

    fn request(tenant: u32, seq: u32, arrival: f64) -> ExtensionRequest {
        ExtensionRequest::new(
            RequestId::new(TenantId(tenant), seq),
            extending_job(seq),
            arrival,
        )
    }

    fn service() -> ServiceConfig {
        ServiceConfig::for_device(DeviceId::A100, k())
    }

    #[test]
    fn completed_results_match_standalone_runs() {
        // Invariant 9: admission changes when a job runs, never its
        // result. Every completed extension must be bit-identical to a
        // standalone launch of the same job.
        let reqs: Vec<ExtensionRequest> =
            (0..3).flat_map(|t| (0..2).map(move |s| request(t, s, 0.0))).collect();
        let mut cfg = service();
        cfg.batch.max_jobs = 2; // force several batches
        let report = run_service(&reqs, &cfg);
        assert_eq!(report.completed(), reqs.len());
        assert!(report.batches.len() >= 3);
        for req in &reqs {
            let standalone =
                run_local_assembly(&Dataset::new(k(), vec![req.job.clone()]), &cfg.gpu);
            let got = report.outcome(req.id).and_then(ServiceOutcome::extension);
            assert_eq!(
                got,
                Some(&standalone.extensions[0]),
                "{}: batched result must equal the standalone run",
                req.id
            );
        }
    }

    #[test]
    fn replay_is_bit_identical() {
        let reqs: Vec<ExtensionRequest> = (0..4)
            .map(|s| request(s % 2, s / 2, 0.001 * s as f64))
            .collect();
        let cfg = service();
        assert_eq!(run_service(&reqs, &cfg), run_service(&reqs, &cfg));
    }

    #[test]
    fn backpressure_rejects_structured() {
        let mut cfg = service();
        cfg.queue = QueueConfig::bounded(2)
            .with_quota(TenantId(1), TenantQuota { max_queued: 1, weight: 1 });
        cfg.batch.max_jobs = 1;
        // All four arrive before anything runs: two fit, tenant 1's
        // second submission hits its quota, the last hits the global cap.
        let reqs =
            vec![request(1, 0, 0.0), request(1, 1, 0.0), request(2, 0, 0.0), request(2, 1, 0.0)];
        let report = run_service(&reqs, &cfg);
        assert_eq!(
            report.outcome(RequestId::new(TenantId(1), 1)),
            Some(&ServiceOutcome::Rejected {
                reason: RejectReason::TenantQuotaExceeded { quota: 1 },
                at: 0.0
            })
        );
        assert_eq!(
            report.outcome(RequestId::new(TenantId(2), 1)),
            Some(&ServiceOutcome::Rejected {
                reason: RejectReason::QueueFull { depth: 2 },
                at: 0.0
            })
        );
        assert_eq!(report.completed(), 2);
        assert_eq!(report.rejected(), 2);
    }

    #[test]
    fn deadlines_time_out_deterministically() {
        let mut cfg = service();
        cfg.batch.max_jobs = 1;
        // Request (0,0) rides the first batch, but any batch takes
        // longer than its microscopic deadline: it executes and then
        // times out. Request (0,1) waits behind it with a deadline far
        // shorter than one batch, so it expires still queued. Tenant 1's
        // deadline-free request completes.
        let reqs = vec![
            request(0, 0, 0.0).with_deadline(1e-12),
            request(0, 1, 0.0).with_deadline(1e-9),
            request(1, 0, 0.0),
        ];
        let report = run_service(&reqs, &cfg);
        assert!(matches!(
            report.outcome(reqs[0].id),
            Some(ServiceOutcome::TimedOut { stage: TimeoutStage::Executed, .. })
        ));
        assert!(matches!(
            report.outcome(reqs[1].id),
            Some(ServiceOutcome::TimedOut { stage: TimeoutStage::Queued, .. })
        ));
        assert!(report.outcome(reqs[2].id).is_some_and(ServiceOutcome::completed));
        assert_eq!(report.timed_out(), 2);
    }

    #[test]
    fn transient_fault_requeues_then_completes() {
        // The victim faults persistently enough to exhaust one run's
        // escalation ladder, gets re-enqueued with backoff, and
        // completes clean on the second run — proof that the fault
        // plan's attempt budget spans re-enqueues via consume().
        let victim = RequestId::new(TenantId(0), 0);
        let mut cfg = service().with_fault(FaultPlan::table_full(victim.uid()).persist(2));
        cfg.requeue = RequeuePolicy::exponential(3, 1e-3);
        let reqs = vec![request(0, 0, 0.0), request(1, 0, 0.0)];
        let report = run_service(&reqs, &cfg);
        match report.outcome(victim) {
            Some(ServiceOutcome::Completed { result, requeues, .. }) => {
                assert_eq!(*requeues, 1, "one service-level requeue");
                let standalone =
                    run_local_assembly(&Dataset::new(k(), vec![extending_job(0)]), &cfg.gpu);
                assert_eq!(
                    result, &standalone.extensions[0],
                    "post-requeue result still matches the standalone run"
                );
            }
            other => panic!("victim should complete after requeue, got {other:?}"),
        }
        // The backoff produced a later batch: victim's completion comes
        // from a batch launched after its first failing one.
        assert!(report.batches.len() >= 2);
    }

    #[test]
    fn poison_job_is_quarantined_and_isolated() {
        let victim = RequestId::new(TenantId(0), 0);
        let mut cfg = service().with_fault(FaultPlan::table_full(victim.uid()).persist(u32::MAX));
        cfg.requeue = RequeuePolicy::exponential(2, 1e-3);
        let reqs = vec![request(0, 0, 0.0), request(1, 0, 0.0), request(2, 0, 0.0)];
        let report = run_service(&reqs, &cfg);
        match report.outcome(victim) {
            Some(ServiceOutcome::Quarantined { attempts, requeues, .. }) => {
                assert_eq!(*requeues, 2, "every requeue was spent first");
                assert!(*attempts >= 3, "each run burned at least one attempt");
            }
            other => panic!("persistent fault must quarantine, got {other:?}"),
        }
        // Bystanders are untouched: identical to a fault-free service.
        let mut clean_cfg = cfg.clone();
        clean_cfg.fault = None;
        let clean = run_service(&reqs, &clean_cfg);
        for req in &reqs[1..] {
            assert_eq!(
                report.outcome(req.id).and_then(ServiceOutcome::extension),
                clean.outcome(req.id).and_then(ServiceOutcome::extension),
                "{}: co-tenant result must be fault-invariant",
                req.id
            );
        }
    }

    #[test]
    fn report_percentiles_are_nearest_rank() {
        let mk = |seq: u32, arrival: f64, done: f64| RequestRecord {
            id: RequestId::new(TenantId(0), seq),
            arrival,
            outcome: ServiceOutcome::Completed {
                result: locassm_core::ExtensionResult {
                    id: seq,
                    right: Vec::new(),
                    left: Vec::new(),
                    right_state: locassm_core::WalkState::End,
                    left_state: locassm_core::WalkState::End,
                },
                kernel: JobOutcome::Ok,
                requeues: 0,
                completed_at: done,
            },
        };
        let report = ServiceReport {
            records: vec![mk(0, 0.0, 1.0), mk(1, 0.0, 2.0), mk(2, 0.0, 4.0), mk(3, 0.0, 8.0)],
            batches: Vec::new(),
            makespan: 8.0,
        };
        assert_eq!(report.latency_percentile(50.0), Some(2.0));
        assert_eq!(report.latency_percentile(99.0), Some(8.0));
        assert_eq!(report.latencies(), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(report.throughput(), 0.5);
        assert_eq!(ServiceReport::default().latency_percentile(50.0), None);
    }

    #[test]
    fn staggered_arrivals_advance_the_virtual_clock() {
        let mut cfg = service();
        cfg.batch.max_jobs = 8;
        // Second wave arrives long after the first batch finishes: the
        // clock must jump, and the waves must land in separate batches.
        let reqs = vec![request(0, 0, 0.0), request(0, 1, 10.0), request(1, 0, 10.0)];
        let report = run_service(&reqs, &cfg);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.batches.len(), 2);
        assert!(report.batches[1].started_at >= 10.0);
        assert!(report.makespan > 10.0);
    }
}

//! # gpu-specs — device models and analytic timing
//!
//! Parameter sets for the three GPUs of the paper (Tables I and III):
//!
//! | Board | Prog. model | Warp | CUs | L1/CU | L2 (used die/tile) | HBM BW | Peak INTOPS |
//! |---|---|---|---|---|---|---|---|
//! | NVIDIA A100 | CUDA | 32 | 108 SM | 192 KB | 40 MB | 1555 GB/s | 358 G |
//! | AMD MI250X (1 GCD) | HIP | 64 | 110 CU | 16 KB | 8 MB | 1600 GB/s | 374 G |
//! | Intel Max 1550 (1 tile) | SYCL | 16 | 64 Xe-core | 512 KB | 204 MB | 1176.21 GB/s | 105 G |
//!
//! plus an occupancy model that turns the shared caches into effective
//! per-warp slices for the `memhier` simulator, and an analytic timing model
//! that converts simulated instruction/byte counts into estimated kernel
//! time (compute, bandwidth, and latency terms). The latency term can be
//! replaced by a simulated one from the scheduled-execution replay
//! (`simt::sched`): [`timing::sched_config`] builds the replay
//! configuration from a device spec, and
//! [`TimeEstimate::with_latency_override`] swaps the measured exposure in.
//! The counters→seconds pipeline is documented end to end in
//! `docs/TIMING.md`.

#![warn(missing_docs)]

pub mod occupancy;
pub mod spec;
pub mod timing;

pub use occupancy::{effective_hierarchy, resident_warps, scheduled_residency};
pub use spec::{DeviceId, DeviceSpec, ProgrammingModel, Vendor};
pub use timing::{sched_config, ticks_to_seconds, Bound, ModelParams, TimeEstimate};

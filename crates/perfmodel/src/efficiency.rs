//! The two efficiency definitions of the paper's portability study.
//!
//! * **Architectural efficiency** (Table IV): the fraction of the
//!   instruction-roofline ceiling the kernel achieves on a device.
//! * **Algorithm efficiency** (Table VII): the fraction of the *theoretical*
//!   INTOP intensity the kernel's empirical intensity reaches — an
//!   architecture-oblivious measure of how close the implementation's data
//!   movement comes to the algorithm's minimum (assuming infinite memory
//!   and a fully associative cache).

use crate::roofline::RooflinePoint;
use crate::theoretical::theoretical_ii;
use gpu_specs::DeviceSpec;

/// Architectural efficiency: achieved INTOPs/s over the roofline ceiling
/// at the kernel's intensity.
pub fn architectural_efficiency(point: &RooflinePoint, spec: &DeviceSpec) -> f64 {
    point.fraction_of_roofline(spec)
}

/// Algorithm efficiency: empirical II over the theoretical II for this k.
///
/// The ratio is reported *uncapped*: a value above 1.0 means the memory
/// hierarchy filtered DRAM traffic below the theoretical model's
/// every-byte-reaches-HBM assumption (our simulator's per-warp tables
/// largely fit in cache at production batch sizes; the paper's hardware
/// measurements sat well below 1.0). Cap at 1.0 when feeding plots that
/// assume a fraction, e.g. [`crate::SpeedupPoint`].
pub fn algorithm_efficiency(empirical_ii: f64, k: usize) -> f64 {
    empirical_ii / theoretical_ii(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_specs::spec::A100;

    #[test]
    fn architectural_efficiency_at_known_fraction() {
        let p = RooflinePoint { ii: 2.0, intops_per_sec: A100.peak_intops_per_sec * 0.155 };
        assert!((architectural_efficiency(&p, &A100) - 0.155).abs() < 1e-12);
    }

    #[test]
    fn algorithm_efficiency_scales_with_ii() {
        // Theoretical II at k=21 is 4.831; an empirical II of 0.83 (the
        // paper's A100 regime) gives ~17.1%.
        let e = algorithm_efficiency(crate::theoretical_ii(21) * 0.171, 21);
        assert!((e - 0.171).abs() < 1e-12);
    }

    #[test]
    fn algorithm_efficiency_is_uncapped() {
        // Above-theoretical intensity is reported as-is (cache filtering).
        assert!(algorithm_efficiency(1000.0, 21) > 1.0);
    }

    #[test]
    fn memory_bound_point_efficiency_uses_slanted_ceiling() {
        // At II below machine balance, the ceiling is bw·II, so achieving
        // 10% of *that* is 10% efficiency even though absolute GINTOPs/s
        // are far below peak.
        let ii = A100.machine_balance() / 10.0;
        let p = RooflinePoint { ii, intops_per_sec: A100.hbm_bytes_per_sec * ii * 0.1 };
        assert!((architectural_efficiency(&p, &A100) - 0.1).abs() < 1e-12);
    }
}

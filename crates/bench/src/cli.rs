//! Shared command-line error handling for the reproduction binaries.
//!
//! The `repro`/`verify`/`make-data` binaries are driven from shell
//! scripts and CI, so they must fail *loudly but cleanly*: a missing
//! flag value or an unwritable output directory exits nonzero with a
//! one-line contextual message instead of a panic backtrace. Exit code
//! 2 marks a usage error (bad arguments), exit code 1 an I/O or parse
//! failure at run time — the same convention `verify` already uses for
//! result mismatches.

use std::fmt::Display;
use std::process::exit;

/// Exit code for usage errors (bad or missing command-line arguments).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for runtime failures (I/O, parse, verification).
pub const EXIT_FAILURE: i32 = 1;

/// Unwrap a parsed argument or exit with a usage message.
///
/// `usage` describes the expected form, e.g. `"--scale <f>"`.
pub fn require_arg<T>(value: Option<T>, usage: &str) -> T {
    match value {
        Some(v) => v,
        None => {
            eprintln!("error: expected {usage}");
            exit(EXIT_USAGE);
        }
    }
}

/// Unwrap a runtime result or exit with a contextual message.
///
/// `context` names the operation, e.g. `"write dataset data/foo.dat"`.
pub fn require_ok<T, E: Display>(value: Result<T, E>, context: &str) -> T {
    match value {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {context}: {e}");
            exit(EXIT_FAILURE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn present_values_pass_through() {
        assert_eq!(require_arg(Some(3u32), "--n <n>"), 3);
        let r: Result<u32, std::num::ParseIntError> = "7".parse();
        assert_eq!(require_ok(r, "parse"), 7);
    }
}

//! Plain-text dataset (de)serialization.
//!
//! Mirrors the role of the artifact's `locassm_extend_7-<k>.dat` files: a
//! self-contained local-assembly input (k, contigs, and per-contig boundary
//! reads with qualities). The format is line-oriented:
//!
//! ```text
//! LOCASSM v1
//! k 21
//! contigs 2
//! contig 0 ACGT...
//! rreads 2
//! ACGTTA... IIIII#...
//! ...
//! lreads 1
//! ...
//! contig 1 ...
//! ```

use crate::contig::ContigJob;
use crate::read::Read;
use std::fmt::Write as _;
use std::io::{BufRead, Error, ErrorKind, Result};

/// A complete local-assembly input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    pub k: usize,
    pub jobs: Vec<ContigJob>,
}

impl Dataset {
    pub fn new(k: usize, jobs: Vec<ContigJob>) -> Self {
        assert!(k >= 1, "k must be positive");
        Dataset { k, jobs }
    }

    /// Total reads across all jobs.
    pub fn total_reads(&self) -> usize {
        self.jobs.iter().map(|j| j.read_count()).sum()
    }

    /// Total hash-table insertions this dataset performs (Table II's
    /// "total hash insertions": Σ over reads of `len − k + 1`).
    pub fn total_insertions(&self) -> usize {
        self.jobs.iter().map(|j| j.insertion_count(self.k)).sum()
    }
}

/// Serialize a dataset to the text format.
pub fn write_dataset(ds: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "LOCASSM v1");
    let _ = writeln!(out, "k {}", ds.k);
    let _ = writeln!(out, "contigs {}", ds.jobs.len());
    for j in &ds.jobs {
        let _ = writeln!(out, "contig {} {}", j.id, std::str::from_utf8(&j.contig).unwrap());
        let _ = writeln!(out, "rreads {}", j.right_reads.len());
        for r in &j.right_reads {
            let _ = writeln!(
                out,
                "{} {}",
                std::str::from_utf8(&r.seq).unwrap(),
                std::str::from_utf8(&r.qual).unwrap()
            );
        }
        let _ = writeln!(out, "lreads {}", j.left_reads.len());
        for r in &j.left_reads {
            let _ = writeln!(
                out,
                "{} {}",
                std::str::from_utf8(&r.seq).unwrap(),
                std::str::from_utf8(&r.qual).unwrap()
            );
        }
    }
    out
}

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

fn expect_kv<'a>(line: Option<Result<String>>, key: &str) -> Result<(String, &'a ())> {
    let line = line.ok_or_else(|| bad(format!("unexpected EOF, wanted `{key}`")))??;
    let rest = line
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| bad(format!("expected `{key} …`, got `{line}`")))?;
    Ok((rest.to_string(), &()))
}

fn parse_read(line: &str) -> Result<Read> {
    let (seq, qual) = line
        .split_once(' ')
        .ok_or_else(|| bad(format!("malformed read line `{line}`")))?;
    if seq.len() != qual.len() {
        return Err(bad("read sequence/quality length mismatch"));
    }
    if !crate::dna::valid_seq(seq.as_bytes()) {
        return Err(bad("read contains non-ACGT characters"));
    }
    Ok(Read::new(seq.as_bytes().to_vec(), qual.as_bytes().to_vec()))
}

/// Parse a dataset from a reader of the text format.
pub fn read_dataset<R: BufRead>(reader: R) -> Result<Dataset> {
    let mut lines = reader.lines();

    let header = lines.next().ok_or_else(|| bad("empty input"))??;
    if header.trim() != "LOCASSM v1" {
        return Err(bad(format!("bad header `{header}`")));
    }
    let (k, _) = expect_kv(lines.next(), "k")?;
    let k: usize = k.parse().map_err(|_| bad("bad k"))?;
    let (n, _) = expect_kv(lines.next(), "contigs")?;
    let n: usize = n.parse().map_err(|_| bad("bad contig count"))?;

    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let (rest, _) = expect_kv(lines.next(), "contig")?;
        let (id, seq) = rest
            .split_once(' ')
            .ok_or_else(|| bad("malformed contig line"))?;
        let id: u32 = id.parse().map_err(|_| bad("bad contig id"))?;
        if !crate::dna::valid_seq(seq.as_bytes()) {
            return Err(bad("contig contains non-ACGT characters"));
        }

        let read_group = |key: &str, lines: &mut std::io::Lines<R>| -> Result<Vec<Read>> {
            let (m, _) = expect_kv(lines.next(), key)?;
            let m: usize = m.parse().map_err(|_| bad("bad read count"))?;
            let mut reads = Vec::with_capacity(m);
            for _ in 0..m {
                let line = lines.next().ok_or_else(|| bad("unexpected EOF in reads"))??;
                reads.push(parse_read(&line)?);
            }
            Ok(reads)
        };
        let right = read_group("rreads", &mut lines)?;
        let left = read_group("lreads", &mut lines)?;
        jobs.push(ContigJob::new(id, seq.as_bytes().to_vec(), right, left));
    }
    // A wrong `contigs` count would otherwise silently truncate the input.
    for line in lines {
        if !line?.trim().is_empty() {
            return Err(bad("trailing content after the declared contig count"));
        }
    }
    Ok(Dataset::new(k, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            4,
            vec![
                ContigJob::new(
                    0,
                    b"ACGTACGT".to_vec(),
                    vec![Read::with_uniform_qual(b"GTACGTAC", b'I')],
                    vec![Read::new(b"TTAC".to_vec(), b"II#I".to_vec())],
                ),
                ContigJob::new(3, b"GGGG".to_vec(), vec![], vec![]),
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let ds = sample();
        let text = write_dataset(&ds);
        let back = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn stats() {
        let ds = sample();
        assert_eq!(ds.total_reads(), 2);
        // k=4: read of 8 → 5 k-mers, read of 4 → 1 k-mer.
        assert_eq!(ds.total_insertions(), 6);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_dataset(&b"NOPE v1\n"[..]).is_err());
        assert!(read_dataset(&b""[..]).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let ds = sample();
        let text = write_dataset(&ds);
        // Drop the final line.
        let cut = &text[..text.len() - 10];
        assert!(read_dataset(cut.as_bytes()).is_err());
    }

    #[test]
    fn rejects_invalid_bases() {
        let text = "LOCASSM v1\nk 4\ncontigs 1\ncontig 0 ACGN\nrreads 0\nlreads 0\n";
        assert!(read_dataset(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_len_mismatch_read() {
        let text = "LOCASSM v1\nk 4\ncontigs 1\ncontig 0 ACGT\nrreads 1\nACGT II\nlreads 0\n";
        assert!(read_dataset(text.as_bytes()).is_err());
    }
}

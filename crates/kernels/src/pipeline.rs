//! The iterative MetaHipMer workflow (Fig. 2) on the simulated GPU.
//!
//! `locassm_core::pipeline` runs the k = 21, 33, 55, 77 loop on the CPU
//! reference; this module runs the same loop through the simulated device
//! — one full Fig. 3 pipeline (binning → estimation → batches → right/left
//! kernels) per round — and returns a per-round [`KernelProfile`] so the
//! cumulative device cost of the whole workflow can be analysed.

use crate::launch::{run_local_assembly, GpuConfig};
use crate::profile::KernelProfile;
use locassm_core::io::Dataset;
use locassm_core::ContigJob;

/// Report for one GPU pipeline round.
#[derive(Debug, Clone)]
pub struct GpuRoundReport {
    pub k: usize,
    pub contigs_extended: usize,
    pub bases_gained: usize,
    pub total_contig_len: usize,
    /// Full device profile of this round's kernel calls.
    pub profile: KernelProfile,
}

/// Outcome of the iterative pipeline on the simulated device.
#[derive(Debug, Clone)]
pub struct GpuPipelineResult {
    /// Final contigs, in input order.
    pub contigs: Vec<Vec<u8>>,
    pub rounds: Vec<GpuRoundReport>,
}

impl GpuPipelineResult {
    /// Total simulated device seconds across all rounds.
    pub fn total_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.profile.seconds()).sum()
    }

    /// Total warp-level INTOPs across all rounds.
    pub fn total_intops(&self) -> u64 {
        self.rounds.iter().map(|r| r.profile.intops()).sum()
    }
}

/// Run the iterative local assembly workflow on the simulated GPU.
///
/// `cfg.walk`/`cfg.retry`/`cfg.binning` apply to every round; the round's
/// k comes from `schedule`. As in the CPU pipeline, each contig's read set
/// stays fixed between rounds (re-alignment is outside the studied kernel).
pub fn run_pipeline_gpu(
    jobs: &[ContigJob],
    schedule: &[usize],
    cfg: &GpuConfig,
) -> GpuPipelineResult {
    let mut current: Vec<ContigJob> = jobs.to_vec();
    let mut rounds = Vec::with_capacity(schedule.len());

    for &k in schedule {
        let ds = Dataset::new(k, current);
        let run = run_local_assembly(&ds, cfg);
        current = ds.jobs;

        let mut extended = 0usize;
        let mut gained = 0usize;
        for (job, r) in current.iter_mut().zip(&run.extensions) {
            if r.total_len() > 0 {
                extended += 1;
                gained += r.total_len();
                job.contig = r.apply(&job.contig);
            }
        }
        rounds.push(GpuRoundReport {
            k,
            contigs_extended: extended,
            bases_gained: gained,
            total_contig_len: current.iter().map(|j| j.contig.len()).sum(),
            profile: run.profile,
        });
    }

    GpuPipelineResult { contigs: current.into_iter().map(|j| j.contig).collect(), rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_specs::DeviceId;
    use locassm_core::pipeline::run_pipeline;
    use locassm_core::walk::WalkConfig;

    fn small_jobs() -> Vec<ContigJob> {
        workloads::paper_dataset(21, 0.001, 55).jobs
    }

    #[test]
    fn gpu_pipeline_matches_cpu_pipeline() {
        let jobs = small_jobs();
        let schedule = [21usize, 33];
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let gpu = run_pipeline_gpu(&jobs, &schedule, &cfg);
        let cpu = run_pipeline(&jobs, &schedule, WalkConfig::default(), true);
        assert_eq!(gpu.contigs, cpu.contigs, "round-by-round contigs must agree");
        for (g, c) in gpu.rounds.iter().zip(&cpu.rounds) {
            assert_eq!(g.k, c.k);
            assert_eq!(g.contigs_extended, c.contigs_extended);
            assert_eq!(g.bases_gained, c.bases_gained);
            assert_eq!(g.total_contig_len, c.total_contig_len);
        }
    }

    #[test]
    fn profiles_accumulate_per_round() {
        let jobs = small_jobs();
        let cfg = GpuConfig::for_device(DeviceId::Mi250x);
        let out = run_pipeline_gpu(&jobs, &[21, 33], &cfg);
        assert_eq!(out.rounds.len(), 2);
        assert!(out.rounds.iter().all(|r| r.profile.intops() > 0));
        assert!(out.total_seconds() > 0.0);
        assert_eq!(
            out.total_intops(),
            out.rounds.iter().map(|r| r.profile.intops()).sum::<u64>()
        );
    }

    #[test]
    fn empty_schedule_is_identity() {
        let jobs = small_jobs();
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let out = run_pipeline_gpu(&jobs, &[], &cfg);
        assert_eq!(out.contigs.len(), jobs.len());
        assert!(out.rounds.is_empty());
        for (a, b) in out.contigs.iter().zip(&jobs) {
            assert_eq!(a, &b.contig);
        }
    }
}

//! Contig binning (Fig. 3, "Contig Binning").
//!
//! The graph-traversal phase has a non-deterministic amount of work per
//! contig; launching contigs with similar expected work together avoids
//! warp stalling (all walks in a batch terminate after a similar number of
//! steps). The binning key is the number of reads assigned to the contig.

use crate::contig::ContigJob;
use serde::{Deserialize, Serialize};

/// How to group contigs into kernel batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinningPolicy {
    /// One batch per power-of-two band of read count: {1}, (1,2], (2,4],
    /// (4,8]… (the paper's "estimated similar amount of work together").
    PowerOfTwo,
    /// Fixed-size batches in input order (no work-aware grouping) — the
    /// ablation baseline.
    FixedSize(usize),
    /// Everything in a single batch.
    Single,
}

/// One kernel batch: indices into the job list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Read-count band label (lower bound), for reporting.
    pub band: usize,
    /// Indices of the jobs in this batch.
    pub jobs: Vec<usize>,
}

/// Group jobs into batches under the given policy.
///
/// Batches are returned in ascending band order; within a batch, jobs keep
/// their input order (determinism).
pub fn bin_contigs(jobs: &[ContigJob], policy: BinningPolicy) -> Vec<Batch> {
    match policy {
        BinningPolicy::Single => {
            if jobs.is_empty() {
                Vec::new()
            } else {
                vec![Batch { band: 0, jobs: (0..jobs.len()).collect() }]
            }
        }
        BinningPolicy::FixedSize(n) => {
            assert!(n > 0, "batch size must be positive");
            (0..jobs.len())
                .collect::<Vec<_>>()
                .chunks(n)
                .map(|c| Batch { band: 0, jobs: c.to_vec() })
                .collect()
        }
        BinningPolicy::PowerOfTwo => {
            let mut bands: Vec<(usize, Vec<usize>)> = Vec::new();
            for (i, j) in jobs.iter().enumerate() {
                let rc = j.read_count().max(1);
                let band = rc.next_power_of_two().trailing_zeros() as usize;
                match bands.iter_mut().find(|(b, _)| *b == band) {
                    Some((_, v)) => v.push(i),
                    None => bands.push((band, vec![i])),
                }
            }
            bands.sort_by_key(|(b, _)| *b);
            bands
                .into_iter()
                .map(|(band, jobs)| Batch { band: 1usize << band, jobs })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::Read;

    fn job_with_reads(id: u32, n: usize) -> ContigJob {
        let reads = (0..n).map(|_| Read::with_uniform_qual(b"ACGTACGT", b'I')).collect();
        ContigJob::new(id, b"ACGTACGTAC".to_vec(), reads, vec![])
    }

    #[test]
    fn power_of_two_bands() {
        let jobs: Vec<_> = [1usize, 2, 3, 4, 5, 8, 9, 100]
            .iter()
            .enumerate()
            .map(|(i, &n)| job_with_reads(i as u32, n))
            .collect();
        let batches = bin_contigs(&jobs, BinningPolicy::PowerOfTwo);
        // Bands: 1 → {0}; 2 → {1}; 4 → {2,3}; 8 → {4,5}; 16 → {6}; 128 → {7}.
        let bands: Vec<usize> = batches.iter().map(|b| b.band).collect();
        assert_eq!(bands, vec![1, 2, 4, 8, 16, 128]);
        assert_eq!(batches[2].jobs, vec![2, 3]);
        assert_eq!(batches[3].jobs, vec![4, 5]);
    }

    #[test]
    fn every_job_in_exactly_one_batch() {
        let jobs: Vec<_> = (0..50).map(|i| job_with_reads(i, (i as usize * 7) % 23 + 1)).collect();
        for policy in [BinningPolicy::PowerOfTwo, BinningPolicy::FixedSize(7), BinningPolicy::Single] {
            let batches = bin_contigs(&jobs, policy);
            let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.jobs.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..50).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn fixed_size_chunks() {
        let jobs: Vec<_> = (0..10).map(|i| job_with_reads(i, 1)).collect();
        let batches = bin_contigs(&jobs, BinningPolicy::FixedSize(4));
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].jobs.len(), 4);
        assert_eq!(batches[2].jobs.len(), 2);
    }

    #[test]
    fn empty_input() {
        for policy in [BinningPolicy::PowerOfTwo, BinningPolicy::FixedSize(4), BinningPolicy::Single] {
            assert!(bin_contigs(&[], policy).is_empty(), "{policy:?}");
        }
    }

    #[test]
    fn zero_read_contig_lands_in_band_one() {
        let jobs = vec![job_with_reads(0, 0)];
        let batches = bin_contigs(&jobs, BinningPolicy::PowerOfTwo);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].band, 1);
    }
}

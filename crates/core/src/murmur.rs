//! `MurmurHashAligned2` — the hash function of the kernel (reference \[20\] in the
//! paper), plus the analytic integer-operation counts behind Table V.
//!
//! The kernel hashes every k-mer on insertion and again on every walk
//! lookup, so this function dominates the kernel's integer work. Its mix
//! loop consumes 4 bytes per iteration, which is why the paper's per-hash
//! INTOP count grows stepwise with k: `33 + 25·⌊k/4⌋ + 31`.

/// The Murmur2 multiplicative constant.
const M: u32 = 0x5bd1_e995;
/// The Murmur2 shift.
const R: u32 = 24;

/// Seed the kernel uses for table indexing.
pub const DEFAULT_SEED: u32 = 0x9747_b28c;

#[inline(always)]
fn mix(h: &mut u32, mut k: u32) {
    k = k.wrapping_mul(M);
    k ^= k >> R;
    k = k.wrapping_mul(M);
    *h = h.wrapping_mul(M);
    *h ^= k;
}

/// Port of Appleby's `MurmurHashAligned2` (the aligned fast path: the
/// kernel copies k-mers to aligned buffers, so every 4-byte chunk is read
/// as one little-endian word).
pub fn murmur_hash_aligned2(key: &[u8], seed: u32) -> u32 {
    let mut h = seed ^ key.len() as u32;
    let mut chunks = key.chunks_exact(4);
    for c in &mut chunks {
        let k = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        mix(&mut h, k);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut t = 0u32;
        for (i, &b) in tail.iter().enumerate() {
            t |= (b as u32) << (8 * i);
        }
        h ^= t;
        h = h.wrapping_mul(M);
    }
    h ^= h >> 13;
    h = h.wrapping_mul(M);
    h ^= h >> 15;
    h
}

/// Integer-operation breakdown of one hash evaluation (paper Table V).
///
/// Note: the paper's Table V lists component rows (33 / 25·⌊k/4⌋ / 31) that
/// do **not** sum to its own INTOP1 totals (215, 305, 457, 635). The totals
/// are authoritative — Table VI builds on them (`430 = 2 × 215`) — and are
/// recovered exactly by adding the loop-control overhead the component rows
/// omit: 5 ops per 4-byte chunk plus 1 op per tail byte, i.e.
/// `INTOP1 = 64 + 30·⌊k/4⌋ + (k mod 4)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MurmurOpBreakdown {
    /// Fixed setup cost (Table V "Initialization").
    pub initialization: u64,
    /// Mix-loop cost: 25 mix ops + 5 loop-control ops per 4-byte chunk.
    pub mix_loop: u64,
    /// Tail-byte handling (1 op per remaining byte).
    pub tail: u64,
    /// Final avalanche (Table V "Cleanup").
    pub cleanup: u64,
}

impl MurmurOpBreakdown {
    /// Breakdown for hashing a key of `len` bytes. Totals match the paper's
    /// Table V exactly: k = 21 → 215, 33 → 305, 55 → 457, 77 → 635.
    pub fn for_len(len: usize) -> Self {
        MurmurOpBreakdown {
            initialization: 33,
            mix_loop: 30 * (len as u64 / 4),
            tail: len as u64 % 4,
            cleanup: 31,
        }
    }

    /// The paper's published "Mix Loop" row (pure mix ops, 25 per chunk).
    pub fn paper_mix_row(&self) -> u64 {
        self.mix_loop / 30 * 25
    }

    /// Total integer operations (the paper's `INTOP1`).
    pub fn total(&self) -> u64 {
        self.initialization + self.mix_loop + self.tail + self.cleanup
    }
}

/// Total integer operations for hashing a key of `len` bytes.
pub fn murmur_intops(len: usize) -> u64 {
    MurmurOpBreakdown::for_len(len).total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values_exact() {
        // Paper Table V: INTOP1 per k-mer size.
        for (k, expect) in [(21usize, 215u64), (33, 305), (55, 457), (77, 635)] {
            let b = MurmurOpBreakdown::for_len(k);
            assert_eq!(b.initialization, 33);
            assert_eq!(b.cleanup, 31);
            assert_eq!(b.total(), expect, "k = {k}");
        }
        // The paper's published "Mix Loop" rows: 125, 200, 325, 475.
        assert_eq!(MurmurOpBreakdown::for_len(21).paper_mix_row(), 125);
        assert_eq!(MurmurOpBreakdown::for_len(33).paper_mix_row(), 200);
        assert_eq!(MurmurOpBreakdown::for_len(55).paper_mix_row(), 325);
        assert_eq!(MurmurOpBreakdown::for_len(77).paper_mix_row(), 475);
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let h1 = murmur_hash_aligned2(b"ACGTACGTACGTACGTACGTA", DEFAULT_SEED);
        let h2 = murmur_hash_aligned2(b"ACGTACGTACGTACGTACGTA", DEFAULT_SEED);
        let h3 = murmur_hash_aligned2(b"ACGTACGTACGTACGTACGTA", 1);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn near_keys_hash_apart() {
        let a = murmur_hash_aligned2(b"AAAAAAAAAAAAAAAAAAAAA", DEFAULT_SEED);
        let b = murmur_hash_aligned2(b"AAAAAAAAAAAAAAAAAAAAC", DEFAULT_SEED);
        let c = murmur_hash_aligned2(b"CAAAAAAAAAAAAAAAAAAAA", DEFAULT_SEED);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn length_is_mixed_in() {
        assert_ne!(
            murmur_hash_aligned2(b"ACGT", DEFAULT_SEED),
            murmur_hash_aligned2(b"ACGTA", DEFAULT_SEED)
        );
    }

    #[test]
    fn empty_key_defined() {
        // Degenerate but must not panic.
        let _ = murmur_hash_aligned2(b"", DEFAULT_SEED);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Hash all 21-mers of a synthetic sequence into 64 buckets; no
        // bucket should be pathologically loaded.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let seq: Vec<u8> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                crate::dna::BASES[(state >> 60) as usize % 4]
            })
            .collect();
        let mut buckets = [0u32; 64];
        for w in seq.windows(21) {
            buckets[(murmur_hash_aligned2(w, DEFAULT_SEED) % 64) as usize] += 1;
        }
        let n = seq.windows(21).count() as u32;
        let mean = n / 64;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b < mean * 4, "bucket {i} overloaded: {b} vs mean {mean}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The mix-loop count is monotone and stepwise in key length.
        #[test]
        fn intops_monotone(a in 1usize..200, b in 1usize..200) {
            if a <= b {
                prop_assert!(murmur_intops(a) <= murmur_intops(b));
            }
        }

        /// Same bytes, same hash; appending a byte changes it (with the
        /// length mixed into the seed, collisions here would be surprising
        /// but are not impossible — so only check determinism universally).
        #[test]
        fn deterministic(key in proptest::collection::vec(any::<u8>(), 0..128), seed in any::<u32>()) {
            prop_assert_eq!(murmur_hash_aligned2(&key, seed), murmur_hash_aligned2(&key, seed));
        }
    }
}

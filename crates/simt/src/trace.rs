//! Warp-level tracing: spans and events recorded during kernel execution.
//!
//! The paper's whole analysis pipeline starts from profiler output —
//! NSight/rocprof/Advisor counters reduced to INTOP intensity, GINTOPs/s
//! and HBM bytes. The simulator's [`crate::AggCounters`] are the
//! end-of-run equivalent; this module is the equivalent of the *timeline*
//! views those profilers also provide. A [`TraceSink`] attached to a
//! [`crate::Warp`] records
//!
//! * **spans** — named phase enter/exit pairs ("stage", "construct",
//!   "walk", …) carrying the full [`WarpCounters`] delta accumulated
//!   inside the phase, so per-phase INTOP intensity and divergence fall
//!   out directly, and
//! * **events** — instantaneous markers: hash-table probe chains with
//!   their round count, ballot/match/shuffle collectives, mer-walk steps,
//!   HBM transactions.
//!
//! Time is measured on a deterministic clock: the warp's cumulative
//! `warp_instructions` count. That makes traces bit-identical across
//! runs and across `parallel: true`/`false` launches, and it is the
//! natural x-axis for an in-order lockstep machine.
//!
//! Tracing is strictly opt-in. A warp without a sink pays one
//! `Option::is_none` branch per *traced call site* (phase boundaries and
//! collective/probe markers — never per `iop`), which the criterion
//! benches in `crates/bench` bound at < 2 % of simulator throughput.

use crate::counters::WarpCounters;

/// Instantaneous (zero-duration) occurrences recorded in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One `ht_get_atomic` probe chain completed after `rounds` linear
    /// probe rounds (1 = no collision; more = hash or thread collisions).
    ProbeChain {
        /// Number of probe rounds the slowest lane needed.
        rounds: u32,
    },
    /// A warp collective issued (`shfl`, `ballot`, `match_any`, `all`,
    /// `any`) — the intrinsics whose availability drives the paper's
    /// porting story (§III).
    Collective {
        /// Static name of the collective (e.g. `"match_any"`).
        name: &'static str,
    },
    /// A warp sync (`__syncwarp` / sub-group `barrier()`).
    Sync,
    /// One mer-walk step: a visited-set scan plus a hash-table lookup
    /// that probed `probes` slots.
    WalkStep {
        /// Hash-table slots inspected by the lookup.
        probes: u32,
    },
    /// A memory instruction that missed all the way to HBM, moving
    /// `read` + `write` sector transactions.
    HbmTx {
        /// HBM read transactions caused by the instruction.
        read: u64,
        /// HBM write transactions caused by the instruction (evictions).
        write: u64,
    },
    /// The per-warp instruction watchdog tripped: the walk spent more
    /// warp instructions than its layout-derived budget allowed. The
    /// kernel aborts with a `WalkBudgetExceeded` fault right after
    /// recording this marker.
    Watchdog {
        /// Budget the walk was allowed (warp instructions).
        budget: u64,
        /// Instructions actually spent when the watchdog fired.
        spent: u64,
    },
    /// A warp-sanitizer check fired (see [`crate::san`]); the full typed
    /// diagnostic lives in the launch's `SanReport` — the trace event
    /// pins *when* it fired on the instruction clock.
    SanFinding {
        /// Stable check identifier (`"lane_race"`, `"divergent_barrier"`,
        /// …) — the same string `SanKind::check` returns.
        check: &'static str,
    },
}

impl EventKind {
    /// Short display name (used by the exporters).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ProbeChain { .. } => "probe_chain",
            EventKind::Collective { name } => name,
            EventKind::Sync => "sync",
            EventKind::WalkStep { .. } => "walk_step",
            EventKind::HbmTx { .. } => "hbm_tx",
            EventKind::Watchdog { .. } => "watchdog",
            EventKind::SanFinding { .. } => "san_finding",
        }
    }
}

/// An instantaneous event stamped on the warp-instruction clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Warp-instruction clock value when the event fired.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A completed phase span.
///
/// Spans may nest; `depth` records the nesting level (0 = outermost) and
/// the counter `delta` is *inclusive* — a parent span's delta contains its
/// children's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Static phase name (`"construct"`, `"walk"`, …).
    pub name: &'static str,
    /// Warp-instruction clock at phase enter.
    pub start: u64,
    /// Warp-instruction clock at phase exit.
    pub end: u64,
    /// Nesting depth at enter time (0 = outermost).
    pub depth: u32,
    /// Counters accumulated between enter and exit (memory stats
    /// included), for per-phase intensity/divergence attribution.
    pub delta: WarpCounters,
}

/// One open (entered, not yet exited) phase.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    name: &'static str,
    start: u64,
    snapshot: WarpCounters,
}

/// Per-warp trace buffer.
///
/// Owned by the [`crate::Warp`] while the kernel runs; detached with
/// [`crate::Warp::take_trace`] as a [`WarpTrace`] afterwards. The grid
/// launcher does this automatically and returns the traces in job order,
/// so a traced launch is deterministic regardless of rayon scheduling.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    warp_id: u64,
    spans: Vec<Span>,
    events: Vec<Event>,
    stack: Vec<OpenSpan>,
}

impl TraceSink {
    /// A new empty sink for warp `warp_id`.
    pub fn new(warp_id: u64) -> Self {
        TraceSink { warp_id, ..Default::default() }
    }

    /// Enter a phase at clock `now` with the given counter snapshot.
    pub(crate) fn enter(&mut self, name: &'static str, now: u64, snapshot: WarpCounters) {
        self.stack.push(OpenSpan { name, start: now, snapshot });
    }

    /// Exit the innermost phase; panics if `name` does not match it
    /// (mis-nested instrumentation is a bug worth failing loudly on).
    pub(crate) fn exit(&mut self, name: &'static str, now: u64, snapshot: WarpCounters) {
        let open = self
            .stack
            .pop()
            .unwrap_or_else(|| panic!("phase_exit(\"{name}\") with no open phase"));
        assert_eq!(
            open.name, name,
            "phase_exit(\"{name}\") does not match open phase \"{}\"",
            open.name
        );
        self.spans.push(Span {
            name,
            start: open.start,
            end: now,
            depth: self.stack.len() as u32,
            delta: snapshot.since(&open.snapshot),
        });
    }

    /// Record an instantaneous event.
    pub(crate) fn event(&mut self, kind: EventKind, now: u64) {
        self.events.push(Event { at: now, kind });
    }

    /// Number of phases currently open.
    pub fn open_phases(&self) -> usize {
        self.stack.len()
    }

    /// Seal the sink into an immutable [`WarpTrace`]; panics if a phase
    /// is still open.
    pub(crate) fn finish(self, width: u32) -> WarpTrace {
        assert!(
            self.stack.is_empty(),
            "trace finished with {} unclosed phase(s): {:?}",
            self.stack.len(),
            self.stack.iter().map(|o| o.name).collect::<Vec<_>>()
        );
        WarpTrace { warp_id: self.warp_id, width, spans: self.spans, events: self.events }
    }
}

/// The completed trace of one warp's kernel execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WarpTrace {
    /// Launch-assigned warp identifier (job index; re-numbered to a
    /// run-global id by multi-launch drivers).
    pub warp_id: u64,
    /// Warp width the trace was recorded at.
    pub width: u32,
    /// Completed spans, ordered by exit time.
    pub spans: Vec<Span>,
    /// Instantaneous events, ordered by clock.
    pub events: Vec<Event>,
}

impl WarpTrace {
    /// Distinct phase names appearing in this trace.
    pub fn phase_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.spans.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Total clock span covered (max span end, or last event).
    pub fn end_clock(&self) -> u64 {
        let span_end = self.spans.iter().map(|s| s.end).max().unwrap_or(0);
        let event_end = self.events.iter().map(|e| e.at).max().unwrap_or(0);
        span_end.max(event_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(instr: u64) -> WarpCounters {
        WarpCounters { width: 32, warp_instructions: instr, ..WarpCounters::new(32) }
    }

    #[test]
    fn spans_nest_and_carry_deltas() {
        let mut sink = TraceSink::new(7);
        sink.enter("outer", 0, counters(0));
        sink.enter("inner", 10, counters(10));
        sink.exit("inner", 25, counters(25));
        sink.exit("outer", 40, counters(40));
        let t = sink.finish(32);
        assert_eq!(t.warp_id, 7);
        assert_eq!(t.spans.len(), 2);
        // Inner completes first, deeper, with the inner delta only.
        assert_eq!(t.spans[0].name, "inner");
        assert_eq!(t.spans[0].depth, 1);
        assert_eq!(t.spans[0].delta.warp_instructions, 15);
        // Outer is inclusive of the inner phase.
        assert_eq!(t.spans[1].name, "outer");
        assert_eq!(t.spans[1].depth, 0);
        assert_eq!(t.spans[1].delta.warp_instructions, 40);
        assert_eq!(t.phase_names(), vec!["inner", "outer"]);
        assert_eq!(t.end_clock(), 40);
    }

    #[test]
    #[should_panic(expected = "does not match open phase")]
    fn mismatched_exit_panics() {
        let mut sink = TraceSink::new(0);
        sink.enter("a", 0, counters(0));
        sink.exit("b", 1, counters(1));
    }

    #[test]
    #[should_panic(expected = "no open phase")]
    fn exit_without_enter_panics() {
        let mut sink = TraceSink::new(0);
        sink.exit("a", 1, counters(1));
    }

    #[test]
    #[should_panic(expected = "unclosed phase")]
    fn unclosed_phase_panics_at_finish() {
        let mut sink = TraceSink::new(0);
        sink.enter("a", 0, counters(0));
        let _ = sink.finish(32);
    }

    #[test]
    fn events_record_kind_and_clock() {
        let mut sink = TraceSink::new(0);
        sink.event(EventKind::ProbeChain { rounds: 3 }, 5);
        sink.event(EventKind::Collective { name: "ballot" }, 9);
        let t = sink.finish(64);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0], Event { at: 5, kind: EventKind::ProbeChain { rounds: 3 } });
        assert_eq!(t.events[1].kind.name(), "ballot");
        assert_eq!(t.end_clock(), 9);
    }

    #[test]
    fn event_names() {
        assert_eq!(EventKind::ProbeChain { rounds: 1 }.name(), "probe_chain");
        assert_eq!(EventKind::Sync.name(), "sync");
        assert_eq!(EventKind::WalkStep { probes: 2 }.name(), "walk_step");
        assert_eq!(EventKind::HbmTx { read: 1, write: 0 }.name(), "hbm_tx");
        assert_eq!(EventKind::Watchdog { budget: 10, spent: 11 }.name(), "watchdog");
        assert_eq!(EventKind::SanFinding { check: "lane_race" }.name(), "san_finding");
    }
}

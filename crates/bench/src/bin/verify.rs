//! `verify` — the reproduction's counterpart of the artifact's
//! `test_script.sh`: run the kernel on every simulated device and check
//! the results for correctness against the reference implementation.
//!
//! ```text
//! verify [--scale S] [--seed N] [--k K]
//! ```
//!
//! Exit code 0 and a PASS line per device on success; a diff summary and
//! exit code 1 on any mismatch.

use gpu_specs::DeviceId;
use locassm_bench::cli::require_arg;
use locassm_core::{assemble_all, AssemblyConfig};
use locassm_kernels::{run_local_assembly, GpuConfig};
use workloads::paper_dataset;

fn main() {
    let mut scale = 0.01;
    let mut seed = 7u64;
    let mut ks = vec![21usize, 33, 55, 77];
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = require_arg(it.next().and_then(|v| v.parse().ok()), "--scale <f>"),
            "--seed" => seed = require_arg(it.next().and_then(|v| v.parse().ok()), "--seed <n>"),
            "--k" => ks = vec![require_arg(it.next().and_then(|v| v.parse().ok()), "--k <n>")],
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0usize;
    for &k in &ks {
        let ds = paper_dataset(k, scale, seed);
        let reference = assemble_all(&ds.jobs, &AssemblyConfig::new(k), true);
        for dev in DeviceId::ALL {
            let cfg = GpuConfig::for_device(dev);
            let run = run_local_assembly(&ds, &cfg);
            if run.extensions == reference {
                println!(
                    "PASS  k={k:<2} {dev:<6} ({}) — {} contigs, extensions identical to reference",
                    dev.spec().model,
                    ds.jobs.len()
                );
            } else {
                failures += 1;
                let diffs = run
                    .extensions
                    .iter()
                    .zip(&reference)
                    .filter(|(a, b)| a != b)
                    .count();
                println!("FAIL  k={k:<2} {dev:<6} — {diffs} contigs differ from reference");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} device/dataset combinations FAILED");
        std::process::exit(1);
    }
    println!("all device/dataset combinations verified");
}

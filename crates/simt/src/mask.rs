//! Lane activity masks.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

/// A predication mask over up to 64 lanes (bit *i* set ⇒ lane *i* active).
///
/// Equivalent to the `unsigned`/`unsigned long long` masks CUDA's
/// `__activemask()` / `__match_any_sync()` traffic in; wide enough for AMD's
/// 64-lane wavefronts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask(pub u64);

impl Mask {
    /// The empty mask.
    pub const NONE: Mask = Mask(0);

    /// Mask with the `width` low lanes active (the full warp).
    pub fn full(width: u32) -> Mask {
        debug_assert!(width >= 1 && width as usize <= crate::MAX_LANES);
        if width == 64 {
            Mask(u64::MAX)
        } else {
            Mask((1u64 << width) - 1)
        }
    }

    /// Mask with exactly one lane active.
    ///
    /// Panics when `lane >= MAX_LANES` in every build profile: an unguarded
    /// `1u64 << lane` would silently alias `lane % 64` in release builds
    /// (Rust shift amounts wrap), turning an out-of-range lane index into a
    /// plausible-looking mask for some *other* lane.
    pub fn lane(lane: u32) -> Mask {
        assert!((lane as usize) < crate::MAX_LANES, "lane index {lane} out of range");
        Mask(1u64 << lane)
    }

    /// Is the lane active? Lane indices ≥ [`crate::MAX_LANES`] are never
    /// active (a total function: no mask has bits for them).
    pub fn contains(self, lane: u32) -> bool {
        (lane as usize) < crate::MAX_LANES && self.0 & (1u64 << lane) != 0
    }

    /// Activate a lane. Panics when `lane >= MAX_LANES` (see [`Mask::lane`]
    /// for why the shift must not be left unguarded).
    pub fn set(&mut self, lane: u32) {
        assert!((lane as usize) < crate::MAX_LANES, "lane index {lane} out of range");
        self.0 |= 1u64 << lane;
    }

    /// Deactivate a lane. Panics when `lane >= MAX_LANES` (see
    /// [`Mask::lane`]).
    pub fn clear(&mut self, lane: u32) {
        assert!((lane as usize) < crate::MAX_LANES, "lane index {lane} out of range");
        self.0 &= !(1u64 << lane);
    }

    /// Number of active lanes.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// No lanes active?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Lowest active lane, if any (CUDA `__ffs(mask) - 1` idiom).
    pub fn first(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    /// Iterate active lane indices in ascending order.
    pub fn lanes(self) -> impl Iterator<Item = u32> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let l = bits.trailing_zeros();
                bits &= bits - 1;
                Some(l)
            }
        })
    }
}

impl BitAnd for Mask {
    type Output = Mask;
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl BitAndAssign for Mask {
    fn bitand_assign(&mut self, rhs: Mask) {
        self.0 &= rhs.0;
    }
}

impl BitOr for Mask {
    type Output = Mask;
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl BitOrAssign for Mask {
    fn bitor_assign(&mut self, rhs: Mask) {
        self.0 |= rhs.0;
    }
}

impl Not for Mask {
    type Output = Mask;
    fn not(self) -> Mask {
        Mask(!self.0)
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask({:#018x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_masks() {
        assert_eq!(Mask::full(32).0, 0xffff_ffff);
        assert_eq!(Mask::full(64).0, u64::MAX);
        assert_eq!(Mask::full(16).0, 0xffff);
        assert_eq!(Mask::full(32).count(), 32);
    }

    #[test]
    fn lane_ops() {
        let mut m = Mask::NONE;
        assert!(m.is_empty());
        m.set(5);
        m.set(63);
        assert!(m.contains(5) && m.contains(63) && !m.contains(4));
        assert_eq!(m.count(), 2);
        assert_eq!(m.first(), Some(5));
        m.clear(5);
        assert_eq!(m.first(), Some(63));
    }

    #[test]
    fn lanes_iterates_in_order() {
        let m = Mask(0b1010_0110);
        assert_eq!(m.lanes().collect::<Vec<_>>(), vec![1, 2, 5, 7]);
    }

    #[test]
    fn bit_ops() {
        let a = Mask(0b1100);
        let b = Mask(0b1010);
        assert_eq!((a & b).0, 0b1000);
        assert_eq!((a | b).0, 0b1110);
        assert_eq!((!a).0, !0b1100u64);
    }

    #[test]
    fn empty_first_is_none() {
        assert_eq!(Mask::NONE.first(), None);
        assert_eq!(Mask::NONE.lanes().count(), 0);
    }

    #[test]
    fn lane_63_is_the_last_valid_lane() {
        // Regression for the shift-overflow fix: the guard must not
        // disturb the topmost valid lane.
        let m = Mask::lane(63);
        assert_eq!(m.0, 1u64 << 63);
        assert!(m.contains(63));
        let mut n = Mask::NONE;
        n.set(63);
        assert_eq!(n, m);
        n.clear(63);
        assert!(n.is_empty());
    }

    #[test]
    fn contains_is_total_past_the_top_lane() {
        // Before the guard, `contains(64)` computed `1u64 << 64`, which in
        // release builds wraps to `1 << 0` and aliases lane 0.
        assert!(!Mask::full(64).contains(64));
        assert!(!Mask::lane(0).contains(64), "lane 64 must not alias lane 0");
        assert!(!Mask(u64::MAX).contains(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "lane index 64 out of range")]
    fn lane_64_panics_in_every_build() {
        let _ = Mask::lane(64);
    }

    #[test]
    #[should_panic(expected = "lane index 64 out of range")]
    fn set_64_panics_in_every_build() {
        Mask::NONE.set(64);
    }

    #[test]
    #[should_panic(expected = "lane index 64 out of range")]
    fn clear_64_panics_in_every_build() {
        Mask(u64::MAX).clear(64);
    }
}

//! Shared probe machinery for the three `ht_get_atomic` dialects.

use crate::layout::{DeviceJob, EMPTY, OFF_KEY_LEN, OFF_KEY_OFF};
use simt::{LaneVec, Mask, Warp};

/// Arguments to one warp-cooperative batch of hash-table claims: each
/// active lane wants the entry for the k-mer at `key_off` in the reads
/// buffer, starting its linear probe at `hash` (already reduced mod slots).
#[derive(Debug, Clone)]
pub struct InsertArgs {
    pub mask: Mask,
    pub key_off: LaneVec<u32>,
    pub hash: LaneVec<u32>,
}

/// Result: the slot index each active lane ended up owning/finding.
pub type SlotVec = LaneVec<u32>;

/// Issue the warp-wide `atomicCAS(&ht[slot].key_len, EMPTY, k)` for the
/// lanes in `mask`; returns the per-lane `prev` values.
pub fn cas_claim(warp: &mut Warp, job: &DeviceJob, mask: Mask, slot: &LaneVec<u32>) -> LaneVec<u32> {
    let addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_LEN));
    let cmp = LaneVec::splat(EMPTY);
    let new = LaneVec::splat(job.k as u32);
    warp.atomic_cas_u32(mask, &addrs, &cmp, &new)
}

/// For the winning lanes, publish the key: store `key_off` into the entry.
/// (The value struct was zero-initialized host-side; the CUDA listing's
/// `.val = {0}` init is modeled as one more store per winner.)
pub fn publish_key(warp: &mut Warp, job: &DeviceJob, winners: Mask, slot: &LaneVec<u32>, args: &InsertArgs) {
    if winners.is_empty() {
        return;
    }
    let addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_OFF));
    warp.store_u32(winners, &addrs, &args.key_off);
}

/// Compare each active lane's k-mer against the stored key of its current
/// slot. Returns per-lane equality. Charges the modeled cost: one
/// `key_off` load plus `⌈k/4⌉` stored-key chunk loads and compares.
pub fn compare_stored_keys(
    warp: &mut Warp,
    job: &DeviceJob,
    mask: Mask,
    slot: &LaneVec<u32>,
    args: &InsertArgs,
) -> LaneVec<bool> {
    let mut eq = LaneVec::splat(false);
    if mask.is_empty() {
        return eq;
    }
    let off_addrs = LaneVec::from_fn(warp.width(), |l| job.entry_field(slot[l], OFF_KEY_OFF));
    let stored_off = warp.load_u32(mask, &off_addrs);

    let k = job.k;
    let chunks = k.div_ceil(4) as u64;
    for j in 0..chunks {
        let addrs =
            LaneVec::from_fn(warp.width(), |l| job.reads + stored_off[l] as u64 + 4 * j);
        let _ = warp.load_u32(mask, &addrs);
        warp.iop(mask, 1); // chunk compare
    }
    warp.iop(mask, 2); // tail handling / result reduction

    // Semantic truth from memory contents (two shared borrows of the
    // arena — no copying in the probe loop).
    for l in mask.lanes() {
        let a = warp.mem.read_bytes(job.reads + stored_off[l] as u64, k as u64);
        let b = warp.mem.read_bytes(job.reads + args.key_off[l] as u64, k as u64);
        eq[l] = a == b;
    }
    eq
}

/// Advance the probe cursor for the lanes still searching.
pub fn advance(warp: &mut Warp, job: &DeviceJob, mask: Mask, slot: &mut LaneVec<u32>) {
    warp.iop(mask, 2); // increment + modulo
    slot.update_masked(mask, |_, s| (s + 1) % job.slots);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DeviceJob;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;

    fn setup() -> (Warp, DeviceJob) {
        let mut warp = Warp::new(32, HierarchyConfig::tiny());
        let reads = vec![Read::with_uniform_qual(b"ACGTACGTACGT", b'I')];
        let job = DeviceJob::stage(&mut warp, b"ACGTACGT", &reads, 4, WalkConfig::default(), 1)
            .unwrap();
        (warp, job)
    }

    #[test]
    fn cas_claims_exactly_once() {
        let (mut warp, job) = setup();
        let mask = Mask(0b11); // two lanes contend for slot 5
        let slot = LaneVec::splat(5u32);
        let prev = cas_claim(&mut warp, &job, mask, &slot);
        assert_eq!(prev[0], EMPTY, "lane 0 wins");
        assert_eq!(prev[1], 4, "lane 1 sees the claimed key_len");
        assert_eq!(warp.mem.read_u32(job.entry_field(5, OFF_KEY_LEN)), 4);
    }

    #[test]
    fn publish_and_compare() {
        let (mut warp, job) = setup();
        let mask = Mask::lane(0);
        let slot = LaneVec::splat(3u32);
        // Lane 0 inserts the k-mer at offset 0 ("ACGT").
        let mut args = InsertArgs { mask, key_off: LaneVec::splat(0u32), hash: LaneVec::splat(3) };
        cas_claim(&mut warp, &job, mask, &slot);
        publish_key(&mut warp, &job, mask, &slot, &args);

        // Same k-mer appears at offset 4 ("ACGT"): equal.
        args.key_off[0] = 4;
        let eq = compare_stored_keys(&mut warp, &job, mask, &slot, &args);
        assert!(eq[0]);

        // Different k-mer at offset 1 ("CGTA"): not equal.
        args.key_off[0] = 1;
        let eq = compare_stored_keys(&mut warp, &job, mask, &slot, &args);
        assert!(!eq[0]);
    }

    #[test]
    fn advance_wraps() {
        let (mut warp, job) = setup();
        let mut slot = LaneVec::splat(job.slots - 1);
        advance(&mut warp, &job, Mask::lane(0), &mut slot);
        assert_eq!(slot[0], 0);
    }
}

//! Portability invariants across the three simulated devices — the
//! reproduction-level counterpart of the paper's correctness artifact
//! check ("a test script that verifies the results for correctness
//! against a result file").

use locassm::kernels::{run_local_assembly, GpuConfig, TableLayoutKind};
use locassm::perfmodel::{performance_portability, RooflinePoint};
use locassm::specs::DeviceId;
use locassm::workloads::paper_dataset;

#[test]
fn all_vendors_agree_on_results() {
    for k in [21, 77] {
        let ds = paper_dataset(k, 0.002, 400 + k as u64);
        let runs: Vec<_> = DeviceId::ALL
            .iter()
            .map(|&d| run_local_assembly(&ds, &GpuConfig::for_device(d)))
            .collect();
        assert_eq!(runs[0].extensions, runs[1].extensions, "A100 vs MI250X, k={k}");
        assert_eq!(runs[0].extensions, runs[2].extensions, "A100 vs Max1550, k={k}");
    }
}

#[test]
fn wider_wavefront_costs_more_intops_for_same_work() {
    // The MI250X's 64-wide wavefront pays more lane-slots for identical
    // lane work than the Max 1550's 16-wide sub-group (thread predication,
    // §V-B) — per warp instruction; total INTOPs reflect utilization.
    let ds = paper_dataset(33, 0.003, 9);
    let util = |dev: DeviceId| {
        let run = run_local_assembly(&ds, &GpuConfig::for_device(dev));
        run.profile.total.lane_utilization()
    };
    let amd = util(DeviceId::Mi250x);
    let intel = util(DeviceId::Max1550);
    assert!(
        intel > amd,
        "16-wide sub-groups must waste fewer lane slots: intel {intel} vs amd {amd}"
    );
}

#[test]
fn amd_moves_the_most_bytes_intel_caches_best() {
    // Table III ordering: L2 Intel ≫ NVIDIA ≫ AMD ⇒ HBM traffic
    // AMD ≫ NVIDIA ≥ Intel for cache-straining workloads (larger k).
    let ds = paper_dataset(77, 0.05, 6);
    let bytes = |dev: DeviceId| {
        run_local_assembly(&ds, &GpuConfig::for_device(dev)).profile.hbm_bytes()
    };
    let nvidia = bytes(DeviceId::A100);
    let amd = bytes(DeviceId::Mi250x);
    let intel = bytes(DeviceId::Max1550);
    assert!(amd > nvidia, "AMD {amd} vs NVIDIA {nvidia}");
    assert!(nvidia >= intel, "NVIDIA {nvidia} vs Intel {intel}");
}

#[test]
fn portability_metric_is_well_behaved_on_simulated_efficiencies() {
    let ds = paper_dataset(33, 0.005, 21);
    let mut effs = Vec::new();
    for dev in DeviceId::ALL {
        let p = run_local_assembly(&ds, &GpuConfig::for_device(dev)).profile;
        let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
        effs.push(rp.fraction_of_roofline(dev.spec()).min(1.0));
    }
    let p = performance_portability(&effs);
    assert!(p > 0.0 && p <= 1.0);
    let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = effs.iter().cloned().fold(0.0f64, f64::max);
    assert!(p >= min - 1e-12 && p <= max + 1e-12);
}

#[test]
fn portability_analysis_extends_across_table_layouts() {
    // The layout axis joins the portability story: per layout, all three
    // vendors agree on results, and the Pennycook metric computed over
    // the three simulated efficiencies stays well-behaved.
    let ds = paper_dataset(33, 0.005, 21);
    for layout in TableLayoutKind::ALL {
        let mut effs = Vec::new();
        let mut extensions = None;
        for dev in DeviceId::ALL {
            let mut cfg = GpuConfig::for_device(dev);
            cfg.layout = layout;
            let run = run_local_assembly(&ds, &cfg);
            match &extensions {
                None => extensions = Some(run.extensions.clone()),
                Some(e) => assert_eq!(&run.extensions, e, "{layout} on {dev}"),
            }
            let p = &run.profile;
            let rp = RooflinePoint::new(p.intops(), p.hbm_bytes(), p.seconds());
            effs.push(rp.fraction_of_roofline(dev.spec()).min(1.0));
        }
        let p = performance_portability(&effs);
        assert!(p > 0.0 && p <= 1.0, "layout {layout}: portability {p}");
    }
}

#[test]
fn nvidia_wins_time_to_solution() {
    // Fig. 5's headline: the A100 (native CUDA path) is fastest overall.
    let ds = paper_dataset(21, 0.02, 14);
    let secs = |dev: DeviceId| {
        run_local_assembly(&ds, &GpuConfig::for_device(dev)).profile.seconds()
    };
    let nvidia = secs(DeviceId::A100);
    assert!(nvidia < secs(DeviceId::Mi250x));
    assert!(nvidia < secs(DeviceId::Max1550));
}

//! SYCL-dialect `ht_get_atomic` (paper Appendix A, third listing).
//!
//! The SYCLomatic port replaces `__match_any_sync`/`__syncwarp(mask)` with
//! a sub-group `barrier()` after the claim+publish step of every probe
//! round (`dpct::atomic_compare_exchange_strong` + `sg.barrier()`). The
//! sub-group width is 16 — the size the paper found "most consistent and
//! optimal" on the Max 1550 (§III-C) — which also reduces predication
//! waste for ragged work.

use crate::fault::KernelFault;
use crate::layout::{table_occupancy, DeviceJob, EMPTY};
use crate::probe::{
    advance, bucket_crossing_vote, cas_claim, compare_stored_keys, publish_key, start_slots,
    InsertArgs, SlotVec,
};
use crate::resize::ensure_capacity;
use crate::table::TOMBSTONE;
use simt::{Mask, Warp};

/// Find-or-claim the entry for each active lane's k-mer. Returns the slot
/// index per lane, or `HashTableFull` if a probe chain wraps the table
/// (the guard is uniform across the three dialects: at most the layout's
/// probe bound rounds — `job.slots` for linear probing). Tombstones and
/// the resize high-water check follow the shared rule documented on
/// [`crate::insert_cuda::ht_get_atomic`].
pub fn ht_get_atomic(
    warp: &mut Warp,
    job: &mut DeviceJob,
    args: &InsertArgs,
) -> Result<SlotVec, KernelFault> {
    if warp.injected_faults().table_full {
        return Err(KernelFault::HashTableFull {
            capacity: job.slots,
            occupancy: table_occupancy(warp, job),
        });
    }
    ensure_capacity(warp, job, args.mask.count())?;
    let probe_bound = job.layout.as_layout().probe_bound(job);
    let mut slot = start_slots(warp, job, args);
    let mut searching = args.mask;

    // Wrap guard ("*hashtable full*" in the listings).
    let mut rounds = 0u32;
    while !searching.is_empty() {
        rounds += 1;
        if rounds > probe_bound {
            warp.san_record(simt::SanKind::ProbeWrap { rounds, slots: job.slots });
            return Err(KernelFault::HashTableFull {
                capacity: job.slots,
                occupancy: table_occupancy(warp, job),
            });
        }
        // prev = dpct::atomic_compare_exchange_strong(...)
        let prev = cas_claim(warp, job, searching, &slot);

        // Winners publish the key before the barrier.
        let mut winners = Mask::NONE;
        for l in searching.lanes() {
            if prev[l] == EMPTY {
                winners.set(l);
            }
        }
        publish_key(warp, job, winners, &slot, args);
        job.occupied += winners.count();

        // sg.barrier(): the whole sub-group synchronizes every round.
        warp.subgroup_barrier();

        // Tombstoned slots are excluded from the compare (stale key
        // bytes) and keep probing — the shared tombstone rule.
        let losers = {
            let mut m = Mask::NONE;
            for l in searching.lanes() {
                if prev[l] != EMPTY && prev[l] != TOMBSTONE {
                    m.set(l);
                }
            }
            m
        };
        let eq = compare_stored_keys(warp, job, losers, &slot, args);
        warp.iop(searching, 2);

        let mut still = Mask::NONE;
        for l in searching.lanes() {
            if !(prev[l] == EMPTY || eq[l]) {
                still.set(l);
            }
        }
        searching = still;
        bucket_crossing_vote(warp, job, searching, rounds - 1);
        advance(warp, job, searching, &args.hash, rounds, &mut slot);
    }
    warp.trace_event(simt::EventKind::ProbeChain { rounds });
    Ok(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locassm_core::walk::WalkConfig;
    use locassm_core::Read;
    use memhier::HierarchyConfig;
    use simt::LaneVec;

    fn setup(width: u32) -> (Warp, DeviceJob) {
        let mut warp = Warp::new(width, HierarchyConfig::tiny());
        let reads = vec![Read::with_uniform_qual(b"ACGTACGTACGT", b'I')];
        let job =
            DeviceJob::stage(&mut warp, b"ACGTACGTACGT", &reads, 4, WalkConfig::default(), 1)
                .unwrap();
        (warp, job)
    }

    #[test]
    fn subgroup_width_16() {
        let (mut warp, mut job) = setup(16);
        let args = InsertArgs {
            mask: Mask::full(16),
            key_off: LaneVec::from_fn(16, |l| l % 9),
            hash: LaneVec::from_fn(16, |l| (l % 9 * 5) % job.slots),
        };
        let slots = ht_get_atomic(&mut warp, &mut job, &args).unwrap();
        for l in 0..16u32 {
            assert_eq!(slots[l], slots[l % 9]);
        }
    }

    #[test]
    fn same_result_as_cuda_dialect() {
        let run = |sycl: bool| {
            let (mut warp, mut job) = setup(16);
            let args = InsertArgs {
                mask: Mask(0b111),
                key_off: LaneVec::from_fn(16, |l| l),
                hash: LaneVec::splat(3u32),
            };
            let slots = if sycl {
                ht_get_atomic(&mut warp, &mut job, &args)
            } else {
                crate::insert_cuda::ht_get_atomic(&mut warp, &mut job, &args)
            }
            .unwrap();
            (0..3).map(|l| slots[l]).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn barrier_per_round() {
        let (mut warp, mut job) = setup(16);
        // Two distinct keys from the same start slot → 2 probe rounds for
        // the second lane.
        let args = InsertArgs {
            mask: Mask(0b11),
            key_off: LaneVec::from_fn(16, |l| l),
            hash: LaneVec::splat(0u32),
        };
        let _ = ht_get_atomic(&mut warp, &mut job, &args);
        assert_eq!(warp.counters.sync_instructions, 2, "one barrier per probe round");
        assert_eq!(warp.counters.collective_instructions, 0, "no match_any in SYCL");
    }
}

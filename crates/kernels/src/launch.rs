//! The host-side pipeline (Fig. 3): contig binning → hash-table size
//! estimation → batch creation → GPU initialize → right extension kernel →
//! left extension kernel → append extensions.
//!
//! The batch assembly is zero-copy: right-extension [`KernelJob`]s borrow
//! contig and read slices straight out of the `Dataset`, left-extension
//! jobs own only the reverse-complement transform, and every launch goes
//! through the pooled warp engine in `simt::grid` with an arena pre-size
//! hint derived from the host-side footprint estimate
//! ([`crate::layout::arena_footprint`]) — so the steady-state hot path
//! performs no sequence copies and no per-warp arena growth.

use crate::fault::{JobOutcome, KernelFault};
use crate::kernel::{extension_kernel, Dialect, KernelJob, KernelOut};
use crate::layout::{arena_footprint, stage_footprint};
use crate::probe::ProbeStrategy;
use crate::profile::{BatchProfile, KernelProfile, PhaseCounters, SchedProfile};
use crate::table::TableLayoutKind;
use gpu_specs::{
    effective_hierarchy, sched_config, scheduled_residency, ticks_to_seconds, DeviceId,
    DeviceSpec, ModelParams, TimeEstimate,
};
use locassm_core::io::Dataset;
use locassm_core::walk::WalkConfig;
use locassm_core::{bin_contigs, BinningPolicy, ExtensionResult, RetryPolicy};
use simt::{
    launch_warps, AggCounters, ExecMode, FaultPlan, LaunchConfig, SanReport, SanitizerConfig,
    WarpCounters,
};

/// Configuration of a simulated GPU run.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    pub device: DeviceId,
    /// Kernel dialect; the paper pairs each device with its native model,
    /// but any combination is allowed (used by the ablation benches).
    pub dialect: Dialect,
    /// Warp/sub-group width; defaults to the device's hardware width.
    pub width: u32,
    pub binning: BinningPolicy,
    pub walk: WalkConfig,
    /// Retry ladder for unaccepted walks (Fig. 4's outer loop).
    pub retry: RetryPolicy,
    /// Simulate warps in parallel (rayon).
    pub parallel: bool,
    /// Draw warps (arena + cache model) from the process-wide pool instead
    /// of constructing one per job. On by default; results are
    /// bit-identical either way — pooling only removes allocator traffic
    /// (see the pooled-vs-fresh equivalence tests).
    pub pool: bool,
    /// Override the device's architectural parameters (what-if hardware
    /// projections, e.g. "MI250X with a 40 MB L2"). `None` uses the
    /// published spec for `device`.
    pub custom_spec: Option<DeviceSpec>,
    /// Attach a trace sink to every warp and collect per-warp
    /// [`simt::WarpTrace`]s in [`GpuRunResult::traces`] (run-global warp
    /// ids, in launch order: batches × {right, left} × job order).
    pub trace: bool,
    /// Deterministic fault-injection plan threaded to every launch
    /// (`None`, the default, injects nothing). Plan job ids use the
    /// run-global *job* numbering — batches × {right, left} × job order —
    /// which is stable whether or not earlier jobs faulted (escalation
    /// retries are not counted).
    pub fault: Option<FaultPlan>,
    /// Warp sanitizer configuration, threaded to every launch (all checks
    /// off by default). The execution-ordering mode is dialect-dependent —
    /// see [`dialect_sanitizer`] — so the `lockstep` flag set here is
    /// overridden per dialect at launch time. With every check off, runs
    /// are bit-identical to an unsanitized build.
    pub sanitize: SanitizerConfig,
    /// Interpreter execution mode for every warp (see [`ExecMode`]).
    /// `Vectorized` (the default) takes the batched hot path; `Scalar`
    /// keeps the reference per-lane interpreter as a benchmarkable
    /// baseline. All modeled state is bit-identical either way.
    pub exec: ExecMode,
    /// Base multiplier on the host-side hash-table slot estimate applied
    /// to every first-attempt job (escalation grows it further on
    /// `HashTableFull`). 1 is the paper's sizing; the autotuner may pick a
    /// larger reserve to shorten probe chains at the cost of table bytes.
    pub slot_reserve: u32,
    /// Probe-cursor strategy for every job (insert and walk lookup share
    /// it). Extensions are invariant across strategies — only the probe
    /// order, and thus counters and modeled time, change.
    pub probe: ProbeStrategy,
    /// Table layout for every job's hash table (see [`crate::table`]):
    /// linear probing (the paper's), bucketed power-of-two-choices, or
    /// iceberg two-level. Extensions are invariant across layouts — only
    /// capacity, probe order, counters and modeled time change.
    pub layout: TableLayoutKind,
    /// Cap on jobs per launch: each batch side is split into chunks of at
    /// most this many warps, each chunk launched with its own L2 share
    /// (`effective_hierarchy`). `None` launches whole sides, the paper's
    /// batching. Run-global job/fault ids are unaffected by chunking.
    pub max_batch: Option<usize>,
    /// Record per-warp execution slices during the scheduled replay and
    /// collect them in [`GpuRunResult::sched_tracks`] (for Chrome-trace
    /// SM-occupancy lanes — see `perfmodel::export`). Off by default;
    /// only meaningful with `exec: ExecMode::Scheduled`.
    pub sched_tracks: bool,
    /// Arm in-kernel incremental resizing for every job (see
    /// [`crate::resize`]): tables grow past their high-water mark inside
    /// the insert dialects instead of faulting `HashTableFull` into the
    /// grown-reserve escalation ladder. The arena hint prices the resize
    /// headroom in, so successful jobs still never regrow their pooled
    /// arena. Off by default; extensions are invariant either way.
    pub resize: bool,
}

/// Adapt a sanitizer configuration to a kernel dialect's execution-
/// ordering model.
///
/// The race detector needs to know which cross-lane orderings the kernel
/// may legally rely on. CUDA (Volta+) has independent thread scheduling:
/// nothing orders lanes between collectives, so the sanitizer runs in its
/// strict mode (`lockstep = false`) and any cross-lane conflict not
/// separated by a collective or `__syncwarp` is a race. HIP wavefronts
/// and SYCL sub-groups execute in implicit lockstep — the ported listings
/// *depend* on it (§III-B: publish/compare ordered by the wavefront's
/// instruction-level lockstep rather than an explicit sync) — so for
/// those dialects only *intra-instruction* conflicts (two lanes touching
/// the same byte in one SIMT op) are flagged.
pub fn dialect_sanitizer(cfg: SanitizerConfig, dialect: Dialect) -> SanitizerConfig {
    SanitizerConfig { lockstep: !matches!(dialect, Dialect::Cuda), ..cfg }
}

impl GpuConfig {
    /// The paper's configuration for a device: native dialect, hardware
    /// width, power-of-two binning.
    pub fn for_device(device: DeviceId) -> Self {
        GpuConfig {
            device,
            dialect: Dialect::native_for(device),
            width: device.spec().warp_width,
            binning: BinningPolicy::PowerOfTwo,
            walk: WalkConfig::default(),
            retry: RetryPolicy::none(),
            parallel: true,
            pool: true,
            custom_spec: None,
            trace: false,
            fault: None,
            sanitize: SanitizerConfig::default(),
            exec: ExecMode::default(),
            slot_reserve: 1,
            probe: ProbeStrategy::default(),
            layout: TableLayoutKind::default(),
            max_batch: None,
            sched_tracks: false,
            resize: false,
        }
    }

    /// The architectural parameters this run simulates.
    pub fn spec(&self) -> &DeviceSpec {
        self.custom_spec.as_ref().unwrap_or_else(|| self.device.spec())
    }

    /// A what-if variant of this configuration with a modified spec.
    pub fn with_spec(mut self, spec: DeviceSpec) -> Self {
        self.custom_spec = Some(spec);
        self
    }
}

/// Outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Per-contig extensions, in dataset order.
    pub extensions: Vec<ExtensionResult>,
    pub profile: KernelProfile,
    /// Per-warp traces (empty unless [`GpuConfig::trace`] was set).
    /// `warp_id` is re-numbered to be unique across the whole run.
    /// Escalation-retry traces are appended right after the batch that
    /// contained the faulting job.
    pub traces: Vec<simt::WarpTrace>,
    /// Per-contig fault outcome, in dataset order: the right- and
    /// left-extension runs' outcomes combined with
    /// [`JobOutcome::combine`]. All `Ok` on a fault-free run.
    pub outcomes: Vec<JobOutcome>,
    /// Sanitizer findings merged across every launch of the run (batches ×
    /// {right, left} × job order, escalation retries appended in place).
    /// Empty — and free — unless [`GpuConfig::sanitize`] enables a check.
    pub san: SanReport,
    /// Scheduled-replay execution slices, on a run-global tick clock
    /// (each launch's slices are offset by the makespan accumulated
    /// before it). Empty unless [`GpuConfig::sched_tracks`] was set on a
    /// `Scheduled`-mode run.
    pub sched_tracks: Vec<simt::SmSlice>,
}

/// The per-warp kernel body every launch runs: the extension kernel plus
/// the staging invariant check — a *successful* job must never regrow its
/// pooled arena past the host-side footprint hint (faulted jobs abort
/// mid-staging, so the invariant only binds on `Ok`).
fn run_extension(
    warp: &mut simt::Warp,
    job: &KernelJob<'_>,
) -> Result<KernelOut, KernelFault> {
    let r = extension_kernel(warp, job);
    if r.is_ok() {
        debug_assert_eq!(
            warp.mem.regrowths(),
            0,
            "host size estimation must upper-bound in-kernel staging"
        );
    }
    r
}

/// Escalation ladder for a faulted job: `(k, slot_reserve)` pairs to
/// retry serially, in order. `HashTableFull` doubles the slot reserve at
/// the same k, then falls down the retry-policy k-ladder with the grown
/// reserve (the paper's Fig. 4 recovery, made table-size aware); every
/// other retryable fault gets a single clean retry (a transient injected
/// fault clears on it); `MalformedJob` is not retryable at all.
fn escalation_ladder(
    schedule: &[usize],
    fault: KernelFault,
    base_reserve: u32,
) -> Vec<(usize, u32)> {
    match fault {
        KernelFault::HashTableFull { .. } => {
            let grown = base_reserve.saturating_mul(2).max(2);
            schedule.iter().map(|&k| (k, grown)).collect()
        }
        KernelFault::MalformedJob { .. } => Vec::new(),
        _ => match schedule.first() {
            Some(&k) => vec![(k, base_reserve)],
            None => Vec::new(),
        },
    }
}

/// Serially retry one faulted job down its escalation ladder.
///
/// Each attempt is a fresh single-warp launch (`parallel: false`) whose
/// arena hint is recomputed for the grown slot reserve; the injection
/// plan stays armed for attempt indices `0..plan.attempts` (the batch run
/// was attempt 0), so a transient plan clears on the first retry while a
/// persistent one keeps faulting until the ladder is exhausted. Retry
/// counters and traces merge into the run totals.
#[allow(clippy::too_many_arguments)]
fn escalate_job(
    cfg: &GpuConfig,
    spec: &DeviceSpec,
    job: &KernelJob<'_>,
    victim_id: u64,
    first_fault: KernelFault,
    traces: &mut Vec<simt::WarpTrace>,
    total: &mut AggCounters,
    phases: &mut PhaseCounters,
    san: &mut SanReport,
) -> (JobOutcome, Option<KernelOut>) {
    let mut fault = first_fault;
    let mut grown = matches!(fault, KernelFault::HashTableFull { .. });
    let schedule = cfg.retry.schedule(job.k);
    let mut ladder = escalation_ladder(&schedule, fault, job.slot_reserve);
    let mut next = 0usize;
    let mut attempts = 0u32;
    while next < ladder.len() {
        let (k, reserve) = ladder[next];
        next += 1;
        attempts += 1;
        let mut retry = job.clone();
        retry.k = k;
        retry.slot_reserve = reserve;
        let retry_schedule = cfg.retry.schedule(k);
        let arena_hint = arena_footprint(
            retry.contig.len(),
            &retry.reads,
            &retry_schedule,
            retry.walk,
            reserve,
            retry.layout,
            retry.resize,
        );
        let armed = cfg.fault.is_some_and(|p| attempts < p.attempts);
        let launch_cfg = LaunchConfig {
            width: cfg.width,
            hierarchy: effective_hierarchy(spec, 1),
            parallel: false,
            trace: cfg.trace,
            pool: cfg.pool,
            arena_hint,
            fault: if armed { cfg.fault } else { None },
            fault_base: victim_id,
            sanitize: dialect_sanitizer(cfg.sanitize, cfg.dialect),
            exec: cfg.exec,
        };
        let out = launch_warps(launch_cfg, std::slice::from_ref(&retry), run_extension);
        for mut t in out.traces {
            t.warp_id = traces.len() as u64;
            traces.push(t);
        }
        for r in out.san {
            san.merge(r);
        }
        total.merge(&out.counters);
        // Retries replay too (a single resident warp hides nothing), so
        // the run's scheduled profile covers every launched instruction.
        schedule_launch(spec, &out.timelines, 1, false, phases, &mut Vec::new());
        let instr = out.warp_instruction_counts;
        let results = out.results;
        fold_phases(phases, cfg.width, &results, &instr, &out.counters);
        match results.into_iter().next() {
            // A single-job launch always yields one result; an empty
            // result set would mean the engine dropped the job, which
            // escalation treats as exhausted rather than panicking.
            None => break,
            Some(Ok(o)) => return (JobOutcome::Recovered { attempts }, Some(o)),
            Some(Err(f)) => {
                fault = f;
                if !fault.retryable() {
                    break;
                }
                if matches!(fault, KernelFault::HashTableFull { .. }) && !grown {
                    // A clean retry re-faulted as a genuine overflow:
                    // restart escalation on the grow branch.
                    grown = true;
                    ladder = escalation_ladder(&schedule, fault, job.slot_reserve);
                    next = 0;
                }
            }
        }
    }
    (JobOutcome::Failed { fault, attempts }, None)
}

/// Replay a `Scheduled`-mode launch's recorded timelines through the
/// event-driven per-SM scheduler and fold the outcome into the run's
/// [`SchedProfile`]. Track slices, when requested, are shifted onto the
/// run-global tick clock (launches replay back-to-back, so each one
/// starts at the makespan accumulated so far). Returns the per-launch
/// replay for the walk-latency override; `None` when the launch recorded
/// no timelines (any non-`Scheduled` mode).
fn schedule_launch(
    spec: &DeviceSpec,
    timelines: &[simt::WarpTimeline],
    residency: u32,
    record_tracks: bool,
    phases: &mut PhaseCounters,
    tracks: &mut Vec<simt::SmSlice>,
) -> Option<simt::SchedResult> {
    if timelines.is_empty() {
        return None;
    }
    let mut sc = sched_config(spec, residency);
    sc.record_tracks = record_tracks;
    let r = simt::schedule(timelines, &sc);
    let offset = phases.sched.map_or(0, |s| s.makespan_ticks);
    tracks.extend(
        r.tracks.iter().map(|s| simt::SmSlice { start: s.start + offset, end: s.end + offset, ..*s }),
    );
    let p = SchedProfile::from_result(&r);
    match phases.sched.as_mut() {
        Some(s) => s.merge(&p),
        None => phases.sched = Some(p),
    }
    Some(r)
}

/// The simulated walk latency term: the replay's un-hidden (exposed) walk
/// stall ticks, averaged over the SMs that ran warps — the per-SM port
/// idle time the analytic `t_latency` approximates.
fn walk_latency_override(r: &simt::SchedResult) -> f64 {
    let exposed = r.phase("walk").map_or(0, |p| p.exposed_ticks);
    ticks_to_seconds(exposed) / r.sms_used.max(1) as f64
}

/// Split a launch's counters at the construct/walk phase boundary and
/// fold them into `phases`, returning the two aggregates for the timing
/// model. Successful jobs contribute their construct snapshot; faulted
/// jobs aborted mid-kernel and have no meaningful boundary, so their
/// whole stream lands on the walk side (zeroed snapshot). Watchdog trips
/// and the largest successful walk budget are tallied here too.
fn fold_phases(
    phases: &mut PhaseCounters,
    width: u32,
    results: &[Result<KernelOut, KernelFault>],
    instr: &[u64],
    launch_total: &AggCounters,
) -> (AggCounters, AggCounters) {
    let zero = WarpCounters { width, ..WarpCounters::default() };
    let mut construct = AggCounters::default();
    let mut max_walk = 0u64;
    for (r, &total_instr) in results.iter().zip(instr) {
        let snap = match r {
            Ok(o) => {
                phases.walk_budget = phases.walk_budget.max(o.walk_budget);
                o.construct
            }
            Err(f) => {
                if matches!(f, KernelFault::WalkBudgetExceeded { .. }) {
                    phases.watchdog_trips += 1;
                }
                zero
            }
        };
        construct.absorb(&snap);
        debug_assert!(
            total_instr >= snap.warp_instructions,
            "phase snapshot exceeds the warp's final instruction count"
        );
        max_walk = max_walk.max(total_instr.saturating_sub(snap.warp_instructions));
    }
    phases.construct.merge(&construct);
    let walk_agg = diff_agg(launch_total, &construct, max_walk);
    phases.walk.merge(&walk_agg);
    (construct, walk_agg)
}

/// Run the full local assembly pipeline for a dataset on a simulated GPU.
pub fn run_local_assembly(ds: &Dataset, cfg: &GpuConfig) -> GpuRunResult {
    let spec = cfg.spec();
    let k = ds.k;

    let batches = bin_contigs(&ds.jobs, cfg.binning);

    let mut total = AggCounters::default();
    let mut phases = PhaseCounters::default();
    let mut batch_profiles = Vec::new();
    let mut traces: Vec<simt::WarpTrace> = Vec::new();
    // Run-global job numbering (batches × {right, left} × job order) —
    // the id space fault plans target. Escalation retries are not
    // counted, so ids are stable whether or not earlier jobs faulted.
    let mut jobs_launched: u64 = 0;
    let mut outcomes: Vec<JobOutcome> = vec![JobOutcome::Ok; ds.jobs.len()];
    let mut san = SanReport::default();
    let mut sched_tracks: Vec<simt::SmSlice> = Vec::new();
    let sanitize = dialect_sanitizer(cfg.sanitize, cfg.dialect);

    // Results indexed by job position.
    let mut right: Vec<(Vec<u8>, locassm_core::WalkState)> =
        vec![(Vec::new(), locassm_core::WalkState::End); ds.jobs.len()];
    let mut left = right.clone();

    // Retry schedule and side-skip threshold are launch-invariant: hoist
    // them out of the per-job loop (the schedule allocates a Vec).
    let schedule = cfg.retry.schedule(k);
    let min_k = schedule.iter().copied().min().unwrap_or(k);

    for batch in &batches {
        // Right extension kernel, then left extension kernel (Fig. 3).
        for side in [Side::Right, Side::Left] {
            let mut indices: Vec<usize> = Vec::with_capacity(batch.jobs.len());
            let mut kernel_jobs: Vec<KernelJob<'_>> = Vec::with_capacity(batch.jobs.len());
            for &idx in &batch.jobs {
                let j = &ds.jobs[idx];
                // The host skips contigs with no work for this side under
                // any k in the retry schedule.
                let job = match side {
                    Side::Right => {
                        if j.contig.len() < min_k || j.right_reads.is_empty() {
                            continue;
                        }
                        // Zero-copy: borrow sequence data from the dataset.
                        KernelJob::borrowed(
                            &j.contig,
                            &j.right_reads,
                            k,
                            cfg.walk,
                            &cfg.retry,
                            cfg.dialect,
                        )
                    }
                    Side::Left => {
                        if j.contig.len() < min_k || j.left_reads.is_empty() {
                            continue;
                        }
                        // Left walks run on the reverse complement: the
                        // transform owns its (genuinely new) storage.
                        let t = j.left_as_right();
                        KernelJob::transformed(
                            t.contig,
                            t.right_reads,
                            k,
                            cfg.walk,
                            &cfg.retry,
                            cfg.dialect,
                        )
                    }
                };
                // Tuned knobs ride on the job: base table reserve, probe
                // strategy and table layout (escalation grows the reserve
                // further).
                let mut job = job;
                job.slot_reserve = cfg.slot_reserve.max(1);
                job.probe = cfg.probe;
                job.layout = cfg.layout;
                job.resize = cfg.resize;
                indices.push(idx);
                kernel_jobs.push(job);
            }
            if kernel_jobs.is_empty() {
                continue;
            }

            // Optional launch cap (an autotuner dimension): split the side
            // into chunks of at most `max_batch` jobs, launched in job
            // order, so run-global job/fault ids match the unchunked
            // numbering. Each chunk sizes its own L2 share from its
            // resident-warp count.
            let chunk_len =
                cfg.max_batch.unwrap_or(usize::MAX).clamp(1, kernel_jobs.len());
            for chunk_start in (0..kernel_jobs.len()).step_by(chunk_len) {
                let chunk_end = (chunk_start + chunk_len).min(kernel_jobs.len());
                let jobs_chunk = &kernel_jobs[chunk_start..chunk_end];
                let idx_chunk = &indices[chunk_start..chunk_end];

                // Host-side size estimation (Fig. 3): pre-size pooled arenas to
                // the largest per-warp slab so staging never regrows them.
                let arena_hint = jobs_chunk
                    .iter()
                    .map(|j| {
                        arena_footprint(
                            j.contig.len(),
                            &j.reads,
                            &schedule,
                            j.walk,
                            j.slot_reserve,
                            j.layout,
                            j.resize,
                        )
                    })
                    .max()
                    .unwrap_or(0);
                let hierarchy = effective_hierarchy(spec, jobs_chunk.len() as u64);
                let side_base = jobs_launched;
                let launch_cfg = LaunchConfig {
                    width: cfg.width,
                    hierarchy,
                    parallel: cfg.parallel,
                    trace: cfg.trace,
                    pool: cfg.pool,
                    arena_hint,
                    fault: cfg.fault,
                    fault_base: side_base,
                    sanitize,
                    exec: cfg.exec,
                };
                let out = launch_warps(launch_cfg, jobs_chunk, run_extension);
                jobs_launched += jobs_chunk.len() as u64;
                // Re-number warp ids to be unique across batches and sides.
                for mut t in out.traces {
                    t.warp_id = traces.len() as u64;
                    traces.push(t);
                }
                for r in out.san {
                    san.merge(r);
                }

                // Phase split: construct snapshots summed; walk = total − construct.
                // The walk phase's critical path (max_warp_instructions) is
                // attributed per warp: each warp's walk segment is its total
                // instruction stream minus its construct-boundary snapshot.
                let (construct, walk_agg) = fold_phases(
                    &mut phases,
                    cfg.width,
                    &out.results,
                    &out.warp_instruction_counts,
                    &out.counters,
                );

                // Scheduled replay: interleave the recorded warp timelines
                // through per-SM issue ports at a residency the chunk's
                // staged footprint supports in its L2 share. Non-Scheduled
                // runs record no timelines and skip this entirely.
                let sched = {
                    let footprint = jobs_chunk
                        .iter()
                        .map(|j| {
                            stage_footprint(
                                j.contig.len(),
                                &j.reads,
                                j.k,
                                j.walk,
                                j.slot_reserve,
                                j.layout,
                                j.resize,
                            )
                        })
                        .max()
                        .unwrap_or(0);
                    schedule_launch(
                        spec,
                        &out.timelines,
                        scheduled_residency(spec, footprint),
                        cfg.sched_tracks,
                        &mut phases,
                        &mut sched_tracks,
                    )
                };

                // Per-phase timing: construction overlaps memory at the
                // device's MLP; the mer-walk is a single-lane dependence chain
                // (MLP ≈ 1).
                let t_construct =
                    TimeEstimate::estimate(spec, &ModelParams::from_counters(&construct));
                let mut t_walk = TimeEstimate::estimate_with_mlp(
                    spec,
                    &ModelParams::from_counters(&walk_agg),
                    1.0,
                );
                if let Some(r) = &sched {
                    // Replace the analytic walk latency term with the
                    // replay's measured un-hidden stall time.
                    t_walk = t_walk.with_latency_override(walk_latency_override(r));
                }
                let time = TimeEstimate {
                    seconds: t_construct.seconds + t_walk.seconds,
                    compute_seconds: t_construct.compute_seconds + t_walk.compute_seconds,
                    bandwidth_seconds: t_construct.bandwidth_seconds + t_walk.bandwidth_seconds,
                    latency_seconds: t_construct.latency_seconds + t_walk.latency_seconds,
                    bound: if t_construct.seconds >= t_walk.seconds {
                        t_construct.bound
                    } else {
                        t_walk.bound
                    },
                };
                batch_profiles.push(BatchProfile {
                    band: batch.band,
                    warps: out.counters.warps,
                    time,
                });
                total.merge(&out.counters);

                for (local, (&idx, r)) in idx_chunk.iter().zip(out.results).enumerate() {
                    let (outcome, o) = match r {
                        Ok(o) => (JobOutcome::Ok, Some(o)),
                        Err(fault) => {
                            // Per-job isolation: one faulting job degrades to
                            // an outcome; the rest of the batch already ran
                            // to completion untouched.
                            escalate_job(
                                cfg,
                                spec,
                                &jobs_chunk[local],
                                side_base + local as u64,
                                fault,
                                &mut traces,
                                &mut total,
                                &mut phases,
                                &mut san,
                            )
                        }
                    };
                    outcomes[idx] = outcomes[idx].combine(outcome);
                    let Some(o) = o else { continue };
                    match side {
                        Side::Right => right[idx] = (o.extension, o.state),
                        Side::Left => {
                            // Left walks ran on the reverse complement.
                            left[idx] = (locassm_core::revcomp(&o.extension), o.state);
                        }
                    }
                }
            }
        }
    }

    let extensions = ds
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| ExtensionResult {
            id: j.id,
            right: std::mem::take(&mut right[i].0),
            left: std::mem::take(&mut left[i].0),
            right_state: right[i].1,
            left_state: left[i].1,
        })
        .collect();

    GpuRunResult {
        extensions,
        profile: KernelProfile {
            device: cfg.device,
            dialect: cfg.dialect,
            k,
            total,
            phases,
            batches: batch_profiles,
        },
        traces,
        outcomes,
        san,
        sched_tracks,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Right,
    Left,
}

/// Aggregate difference (total − construct) for phase attribution.
///
/// Every phase snapshot must be a prefix of its warp's final counters, so
/// `total ≥ part` field-by-field; that invariant is `debug_assert!`ed and
/// the subtraction saturates rather than wrapping in release builds (a
/// wrapped counter would silently corrupt the roofline inputs downstream).
/// `max_walk_instructions` is the caller-computed longest single-warp walk
/// segment — the phase's critical path cannot be derived from two
/// aggregates alone (see [`PhaseCounters`] for the semantics).
fn diff_agg(total: &AggCounters, part: &AggCounters, max_walk_instructions: u64) -> AggCounters {
    debug_assert!(
        total.warp_instructions >= part.warp_instructions
            && total.int_instructions >= part.int_instructions
            && total.collective_instructions >= part.collective_instructions
            && total.sync_instructions >= part.sync_instructions
            && total.atomic_instructions >= part.atomic_instructions
            && total.atomic_replays >= part.atomic_replays
            && total.lane_int_ops >= part.lane_int_ops
            && (0..4).all(|q| total.occupancy_quartiles[q] >= part.occupancy_quartiles[q]),
        "phase snapshot exceeds launch totals: total={total:?} part={part:?}"
    );
    AggCounters {
        width: total.width,
        warps: total.warps,
        warp_instructions: total.warp_instructions.saturating_sub(part.warp_instructions),
        int_instructions: total.int_instructions.saturating_sub(part.int_instructions),
        collective_instructions: total
            .collective_instructions
            .saturating_sub(part.collective_instructions),
        sync_instructions: total.sync_instructions.saturating_sub(part.sync_instructions),
        atomic_instructions: total.atomic_instructions.saturating_sub(part.atomic_instructions),
        atomic_replays: total.atomic_replays.saturating_sub(part.atomic_replays),
        lane_int_ops: total.lane_int_ops.saturating_sub(part.lane_int_ops),
        occupancy_quartiles: [
            total.occupancy_quartiles[0].saturating_sub(part.occupancy_quartiles[0]),
            total.occupancy_quartiles[1].saturating_sub(part.occupancy_quartiles[1]),
            total.occupancy_quartiles[2].saturating_sub(part.occupancy_quartiles[2]),
            total.occupancy_quartiles[3].saturating_sub(part.occupancy_quartiles[3]),
        ],
        max_warp_instructions: max_walk_instructions,
        mem: total.mem.since(&part.mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locassm_core::{assemble_all, AssemblyConfig};
    use workloads::paper_dataset;

    fn small_ds() -> Dataset {
        paper_dataset(21, 0.002, 42)
    }

    #[test]
    fn gpu_matches_cpu_reference() {
        let ds = small_ds();
        let cfg = GpuConfig::for_device(DeviceId::A100);
        let gpu = run_local_assembly(&ds, &cfg);
        let cpu = assemble_all(
            &ds.jobs,
            &AssemblyConfig { k: ds.k, walk: cfg.walk, retry: cfg.retry.clone() },
            true,
        );
        assert_eq!(gpu.extensions, cpu, "A100/CUDA run must match the CPU oracle");
    }

    #[test]
    fn all_devices_produce_identical_extensions() {
        let ds = small_ds();
        let a = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let b = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Mi250x));
        let c = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::Max1550));
        assert_eq!(a.extensions, b.extensions);
        assert_eq!(a.extensions, c.extensions);
    }

    #[test]
    fn profile_has_work() {
        let ds = small_ds();
        let r = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let p = &r.profile;
        assert!(p.intops() > 0);
        assert!(p.hbm_bytes() > 0);
        assert!(p.seconds() > 0.0);
        assert!(p.phases.construct.int_instructions > 0);
        assert!(p.phases.walk.int_instructions > 0);
        assert!(!p.batches.is_empty());
    }

    #[test]
    fn deterministic_across_parallel_modes() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::Max1550);
        let par = run_local_assembly(&ds, &cfg);
        cfg.parallel = false;
        let ser = run_local_assembly(&ds, &cfg);
        assert_eq!(par.extensions, ser.extensions);
        assert_eq!(par.profile.total, ser.profile.total);
    }

    #[test]
    fn traced_run_collects_run_global_traces() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.trace = true;
        let traced = run_local_assembly(&ds, &cfg);
        assert!(!traced.traces.is_empty());
        for (i, t) in traced.traces.iter().enumerate() {
            assert_eq!(t.warp_id, i as u64, "run-global warp ids");
            assert!(
                t.phase_names().len() >= 3,
                "warp {i} has phases {:?}",
                t.phase_names()
            );
        }
        // Observing the run must not change it.
        cfg.trace = false;
        let plain = run_local_assembly(&ds, &cfg);
        assert_eq!(traced.extensions, plain.extensions);
        assert_eq!(traced.profile.total, plain.profile.total);
        assert!(plain.traces.is_empty());
    }

    /// Satellite equivalence suite: a pooled run must be *bit-identical*
    /// to a fresh-warp run — extensions, every aggregate counter, and the
    /// full warp traces — in both parallel and serial modes, on all three
    /// devices. Pooling is a pure allocator optimisation; any observable
    /// difference is a reset bug.
    #[test]
    fn pooled_and_fresh_runs_are_bit_identical() {
        let ds = small_ds();
        for device in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
            for parallel in [true, false] {
                let mut cfg = GpuConfig::for_device(device);
                cfg.parallel = parallel;
                cfg.trace = true;
                cfg.pool = true;
                let pooled = run_local_assembly(&ds, &cfg);
                cfg.pool = false;
                let fresh = run_local_assembly(&ds, &cfg);

                let tag = format!("{device} parallel={parallel}");
                assert_eq!(pooled.extensions, fresh.extensions, "{tag}: extensions");
                assert_eq!(pooled.profile.total, fresh.profile.total, "{tag}: totals");
                assert_eq!(
                    pooled.profile.phases.construct, fresh.profile.phases.construct,
                    "{tag}: construct phase"
                );
                assert_eq!(
                    pooled.profile.phases.walk, fresh.profile.phases.walk,
                    "{tag}: walk phase"
                );
                assert_eq!(pooled.traces, fresh.traces, "{tag}: warp traces");
            }
        }
    }

    /// The pooled run's phase timing inputs (and thus the modeled seconds)
    /// must match the fresh run's too — the batch profiles feed the
    /// roofline model directly.
    #[test]
    fn pooled_and_fresh_runs_agree_on_modeled_time() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.pool = true;
        let pooled = run_local_assembly(&ds, &cfg);
        cfg.pool = false;
        let fresh = run_local_assembly(&ds, &cfg);
        assert_eq!(pooled.profile.batches.len(), fresh.profile.batches.len());
        assert_eq!(pooled.profile.seconds(), fresh.profile.seconds());
    }

    /// The walk phase's critical path is attributed per warp, not copied
    /// from the launch total: each warp's walk segment is its own total
    /// minus its own construct snapshot, and the construct + walk maxima
    /// must each stay below the overall critical path while covering it.
    #[test]
    fn walk_critical_path_is_attributed_not_copied() {
        let ds = small_ds();
        let r = run_local_assembly(&ds, &GpuConfig::for_device(DeviceId::A100));
        let p = &r.profile;
        let construct_max = p.phases.construct.max_warp_instructions;
        let walk_max = p.phases.walk.max_warp_instructions;
        let total_max = p.total.max_warp_instructions;
        assert!(walk_max > 0);
        assert!(
            walk_max < total_max,
            "walk critical path {walk_max} must exclude construction (total {total_max})"
        );
        assert!(
            construct_max + walk_max >= total_max,
            "phase maxima {construct_max}+{walk_max} must cover the total {total_max} \
             (both bound the same slowest warp from its two segments)"
        );
    }

    /// Fault-free equivalence: threading the fault machinery through the
    /// launch stack must not perturb a clean run. A run with `fault:
    /// None` and one with an armed plan targeting an out-of-range job are
    /// bit-identical — extensions, counters, traces, outcomes — on all
    /// three devices, parallel and serial.
    #[test]
    fn unarmed_fault_plan_is_bit_identical_to_none() {
        let ds = small_ds();
        for device in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
            for parallel in [true, false] {
                let mut cfg = GpuConfig::for_device(device);
                cfg.parallel = parallel;
                cfg.trace = true;
                let plain = run_local_assembly(&ds, &cfg);
                cfg.fault = Some(FaultPlan::table_full(u64::MAX));
                let armed = run_local_assembly(&ds, &cfg);

                let tag = format!("{device} parallel={parallel}");
                assert_eq!(plain.extensions, armed.extensions, "{tag}: extensions");
                assert_eq!(plain.profile.total, armed.profile.total, "{tag}: totals");
                assert_eq!(plain.traces, armed.traces, "{tag}: traces");
                assert_eq!(plain.outcomes, armed.outcomes, "{tag}: outcomes");
                assert!(plain.outcomes.iter().all(|o| *o == JobOutcome::Ok), "{tag}");
            }
        }
    }

    /// Map a run-global fault-plan job id back to `(dataset index,
    /// is_right_side)`, replaying the host's launch-order numbering.
    fn dataset_index_of(ds: &Dataset, cfg: &GpuConfig, victim: u64) -> (usize, bool) {
        let schedule = cfg.retry.schedule(ds.k);
        let min_k = schedule.iter().copied().min().unwrap_or(ds.k);
        let mut id = 0u64;
        for batch in &bin_contigs(&ds.jobs, cfg.binning) {
            for side in 0..2 {
                for &idx in &batch.jobs {
                    let j = &ds.jobs[idx];
                    if j.contig.len() < min_k {
                        continue;
                    }
                    let reads =
                        if side == 0 { &j.right_reads } else { &j.left_reads };
                    if reads.is_empty() {
                        continue;
                    }
                    if id == victim {
                        return (idx, side == 0);
                    }
                    id += 1;
                }
            }
        }
        panic!("victim id {victim} exceeds the run's job count");
    }

    /// The tentpole acceptance scenario: inject a table-full fault into
    /// one job of a real batch. The batch completes; the victim is
    /// `Recovered` (the transient plan clears on the grown retry); every
    /// other job's extension is bit-identical to the fault-free run; and
    /// the warp pool remains fully reusable afterwards.
    #[test]
    fn injected_fault_isolates_to_one_job() {
        let ds = small_ds();
        const VICTIM: u64 = 3;
        for device in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
            for parallel in [true, false] {
                let mut cfg = GpuConfig::for_device(device);
                cfg.parallel = parallel;
                let clean = run_local_assembly(&ds, &cfg);
                cfg.fault = Some(FaultPlan::table_full(VICTIM));
                let faulted = run_local_assembly(&ds, &cfg);

                let tag = format!("{device} parallel={parallel}");
                let (victim_idx, _) = dataset_index_of(&ds, &cfg, VICTIM);
                for (i, (c, f)) in
                    clean.extensions.iter().zip(&faulted.extensions).enumerate()
                {
                    assert_eq!(c, f, "{tag}: job {i} must be bit-identical");
                }
                for (i, o) in faulted.outcomes.iter().enumerate() {
                    if i == victim_idx {
                        assert_eq!(
                            *o,
                            JobOutcome::Recovered { attempts: 1 },
                            "{tag}: the victim recovers on the grown retry"
                        );
                    } else {
                        assert_eq!(*o, JobOutcome::Ok, "{tag}: job {i}");
                    }
                }

                // The pool survived the fault: a fresh clean run reuses
                // pooled warps and reproduces the baseline bit-for-bit.
                let stats_before = simt::pool_stats();
                cfg.fault = None;
                let after = run_local_assembly(&ds, &cfg);
                let stats_after = simt::pool_stats();
                assert_eq!(after.extensions, clean.extensions, "{tag}: rerun");
                assert_eq!(after.profile.total, clean.profile.total, "{tag}: rerun totals");
                assert!(
                    stats_after.reused > stats_before.reused,
                    "{tag}: the rerun must draw from the pool"
                );
            }
        }
    }

    /// A persistent table-full plan (`attempts: 2`) also faults the grown
    /// same-k retry, pushing escalation down the k-ladder: the victim
    /// recovers at a fallback k and its extension matches the CPU
    /// reference assembled at that k.
    #[test]
    fn persistent_fault_recovers_at_fallback_k() {
        let ds = small_ds();
        const VICTIM: u64 = 1;
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.retry = RetryPolicy::ladder(ds.k);
        cfg.fault = Some(FaultPlan::table_full(VICTIM).persist(2));
        let r = run_local_assembly(&ds, &cfg);
        let (victim_idx, is_right) = dataset_index_of(&ds, &cfg, VICTIM);
        assert_eq!(
            r.outcomes[victim_idx],
            JobOutcome::Recovered { attempts: 2 },
            "attempt 1 (grown, same k) still faults; attempt 2 (fallback k) clears"
        );

        // CPU oracle: assemble the victim contig with the fallback k as
        // its primary — exactly what the recovered attempt ran.
        let schedule = cfg.retry.schedule(ds.k);
        let fallback_k = schedule[1];
        let j = &ds.jobs[victim_idx];
        let cpu = assemble_all(
            std::slice::from_ref(j),
            &AssemblyConfig { k: fallback_k, walk: cfg.walk, retry: cfg.retry.clone() },
            true,
        );
        let (got, want) = if is_right {
            (&r.extensions[victim_idx].right, &cpu[0].right)
        } else {
            (&r.extensions[victim_idx].left, &cpu[0].left)
        };
        assert_eq!(got, want, "the recovered side matches the CPU oracle at k={fallback_k}");
    }

    /// An inexhaustibly persistent plan (`u32::MAX` attempts) faults
    /// every rung of the ladder: the victim ends `Failed` with the
    /// table-full fault, contributes an empty extension, and still does
    /// not disturb its neighbours.
    #[test]
    fn exhausted_escalation_reports_failed() {
        let ds = small_ds();
        const VICTIM: u64 = 0;
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.retry = RetryPolicy::ladder(ds.k);
        let clean = run_local_assembly(&ds, &cfg);
        cfg.fault = Some(FaultPlan::table_full(VICTIM).persist(u32::MAX));
        let r = run_local_assembly(&ds, &cfg);
        let (victim_idx, is_right) = dataset_index_of(&ds, &cfg, VICTIM);
        match r.outcomes[victim_idx] {
            JobOutcome::Failed { fault: KernelFault::HashTableFull { .. }, attempts } => {
                assert!(
                    attempts >= 2,
                    "an exhausted ladder must report every attempt it spent, got {attempts}"
                );
            }
            other => panic!("expected Failed(HashTableFull), got {other:?}"),
        }
        assert!(!r.outcomes[victim_idx].succeeded());
        let failed_side = if is_right {
            &r.extensions[victim_idx].right
        } else {
            &r.extensions[victim_idx].left
        };
        assert!(failed_side.is_empty(), "a failed job contributes no bases");
        for (i, (c, f)) in clean.extensions.iter().zip(&r.extensions).enumerate() {
            if i != victim_idx {
                assert_eq!(c, f, "job {i} must be untouched");
            }
        }
    }

    /// Injected arena-exhaustion and watchdog faults are transient by
    /// default: one clean retry recovers the victim and the run matches
    /// the fault-free baseline everywhere.
    #[test]
    fn transient_alloc_and_watchdog_faults_recover_cleanly() {
        let ds = small_ds();
        const VICTIM: u64 = 2;
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        let clean = run_local_assembly(&ds, &cfg);
        for plan in
            [FaultPlan::alloc_failure(VICTIM, 3), FaultPlan::watchdog(VICTIM)]
        {
            cfg.fault = Some(plan);
            let r = run_local_assembly(&ds, &cfg);
            let (victim_idx, _) = dataset_index_of(&ds, &cfg, VICTIM);
            assert_eq!(r.extensions, clean.extensions, "recovery is exact");
            assert_eq!(r.outcomes[victim_idx], JobOutcome::Recovered { attempts: 1 });
        }
        // The watchdog trip is visible in the phase counters.
        cfg.fault = Some(FaultPlan::watchdog(VICTIM));
        let r = run_local_assembly(&ds, &cfg);
        assert_eq!(r.profile.phases.watchdog_trips, 1);
        assert!(r.profile.phases.walk_budget > 0);
    }

    /// The execution-ordering mode follows the dialect: CUDA's independent
    /// thread scheduling gets the strict race detector; HIP wavefronts and
    /// SYCL sub-groups run in implicit lockstep, which their ported
    /// listings legally rely on.
    #[test]
    fn sanitizer_mode_follows_dialect() {
        let all = SanitizerConfig::all();
        assert!(!dialect_sanitizer(all, Dialect::Cuda).lockstep);
        assert!(dialect_sanitizer(all, Dialect::Hip).lockstep);
        assert!(dialect_sanitizer(all, Dialect::Sycl).lockstep);
        // Everything else passes through untouched.
        let adapted = dialect_sanitizer(all, Dialect::Hip);
        assert!(adapted.races && adapted.sync && adapted.lint && adapted.invariants);
    }

    /// Full-checks sanitized runs are bit-identical to plain runs on every
    /// device — the sanitizer models zero instructions — and the paper's
    /// kernels come back clean (no findings) on all three dialects. This
    /// is the launch-level half of the `sanitizer_clean` tier-1 gate.
    /// Traces are compared modulo `san_finding` instants: surfacing lints
    /// as trace events is the sanitizer's *output*, not a perturbation
    /// (spans and every modeled counter stay identical).
    #[test]
    fn sanitized_run_is_bit_identical_and_clean() {
        let strip_san = |traces: &[simt::WarpTrace]| -> Vec<simt::WarpTrace> {
            traces
                .iter()
                .map(|t| {
                    let mut t = t.clone();
                    t.events.retain(|e| {
                        !matches!(e.kind, simt::EventKind::SanFinding { .. })
                    });
                    t
                })
                .collect()
        };
        let ds = small_ds();
        for device in [DeviceId::A100, DeviceId::Mi250x, DeviceId::Max1550] {
            let mut cfg = GpuConfig::for_device(device);
            cfg.trace = true;
            let plain = run_local_assembly(&ds, &cfg);
            assert!(plain.san.is_clean() && plain.san.lints.is_empty(), "{device}: off = empty");
            cfg.sanitize = SanitizerConfig::all();
            let sane = run_local_assembly(&ds, &cfg);

            let tag = format!("{device}");
            assert_eq!(plain.extensions, sane.extensions, "{tag}: extensions");
            assert_eq!(plain.profile.total, sane.profile.total, "{tag}: totals");
            assert_eq!(plain.traces, strip_san(&sane.traces), "{tag}: traces");
            assert_eq!(plain.outcomes, sane.outcomes, "{tag}: outcomes");
            assert!(
                sane.san.is_clean(),
                "{tag}: the paper's kernels must sanitize clean, got {:?}",
                sane.san.findings
            );
        }
    }

    /// Escalation retries run under the same sanitizer as the batch: a
    /// transient injected table-full fault recovers and the sanitized
    /// retry still reports clean.
    #[test]
    fn sanitizer_covers_escalation_retries() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        cfg.sanitize = SanitizerConfig::all();
        cfg.fault = Some(FaultPlan::table_full(3));
        let r = run_local_assembly(&ds, &cfg);
        assert!(r.outcomes.iter().any(|o| matches!(o, JobOutcome::Recovered { .. })));
        assert!(r.san.is_clean(), "recovered retries sanitize clean: {:?}", r.san.findings);
    }

    #[test]
    fn binning_policies_agree_on_results() {
        let ds = small_ds();
        let mut cfg = GpuConfig::for_device(DeviceId::A100);
        let a = run_local_assembly(&ds, &cfg);
        cfg.binning = BinningPolicy::Single;
        let b = run_local_assembly(&ds, &cfg);
        assert_eq!(a.extensions, b.extensions);
        // Work totals match too; only batch structure differs.
        assert_eq!(a.profile.total.int_instructions, b.profile.total.int_instructions);
    }
}

#[cfg(test)]
mod whatif_tests {
    use super::*;
    use workloads::paper_dataset;

    /// The paper's §V-E conclusion in executable form: giving the MI250X
    /// model a Max 1550-sized L2 collapses its HBM traffic toward the
    /// A100's.
    #[test]
    fn bigger_l2_fixes_the_mi250x() {
        // Full occupancy (one batch > 880 resident warps) so the L2 share
        // is under real pressure, as in the production-scale runs.
        let ds = paper_dataset(21, 0.07, 61);
        let mut cfg = GpuConfig::for_device(DeviceId::Mi250x);
        cfg.binning = locassm_core::BinningPolicy::Single;
        let stock = run_local_assembly(&ds, &cfg);

        let mut spec = DeviceId::Mi250x.spec().clone();
        spec.l2_bytes = 204 * 1024 * 1024; // Max 1550-sized
        let upgraded_cfg = cfg.clone().with_spec(spec);
        let upgraded = run_local_assembly(&ds, &upgraded_cfg);

        assert_eq!(
            stock.extensions, upgraded.extensions,
            "hardware what-ifs must not change results"
        );
        assert!(
            upgraded.profile.hbm_bytes() * 2 < stock.profile.hbm_bytes(),
            "204 MB L2 must collapse traffic: {} vs {}",
            upgraded.profile.hbm_bytes(),
            stock.profile.hbm_bytes()
        );
        assert!(upgraded.profile.seconds() < stock.profile.seconds());
    }

    /// Conversely, shrinking the A100's L2 to the MI250X's pushes its
    /// traffic up.
    #[test]
    fn smaller_l2_hurts_the_a100() {
        let ds = paper_dataset(21, 0.07, 62);
        let mut base = GpuConfig::for_device(DeviceId::A100);
        base.binning = locassm_core::BinningPolicy::Single;
        let stock = run_local_assembly(&ds, &base);

        let mut spec = DeviceId::A100.spec().clone();
        spec.l2_bytes = 8 * 1024 * 1024;
        spec.l1_bytes_per_cu = 16 * 1024;
        let cfg = base.clone().with_spec(spec);
        let shrunk = run_local_assembly(&ds, &cfg);

        assert!(shrunk.profile.hbm_bytes() > stock.profile.hbm_bytes());
    }
}

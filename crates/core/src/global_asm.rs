//! Global de Bruijn graph construction and contig generation
//! (Fig. 2, "De Bruijn Graph Construction" → "Contig Generation").
//!
//! Contigs are the maximal non-branching paths (unitigs) of the global
//! k-mer graph built from the error-filtered [`crate::kmer_count::KmerSpectrum`]:
//! a walk extends while the current k-mer has exactly one successor *and*
//! that successor has exactly one predecessor — any fork (from sequencing
//! error survivors, repeats, or inter-organism homology) ends the contig,
//! which is precisely what the *local* assembly phase later repairs.
//!
//! Strands are treated independently (no reverse-complement
//! canonicalization) — a documented simplification; the local assembly
//! phase this repo studies is strand-explicit in the same way.

use crate::dna::BASES;
use crate::kmer_count::KmerSpectrum;

/// Out-neighbors of `kmer` present in the spectrum (as extension bases).
fn successors(s: &KmerSpectrum, kmer: &[u8], buf: &mut Vec<u8>) -> Vec<u8> {
    let k = kmer.len();
    buf.clear();
    buf.extend_from_slice(&kmer[1..]);
    buf.push(b'A');
    BASES
        .iter()
        .copied()
        .filter(|&b| {
            buf[k - 1] = b;
            s.contains(buf)
        })
        .collect()
}

/// In-neighbors of `kmer` present in the spectrum (as predecessor bases).
fn predecessors(s: &KmerSpectrum, kmer: &[u8], buf: &mut Vec<u8>) -> Vec<u8> {
    let k = kmer.len();
    buf.clear();
    buf.push(b'A');
    buf.extend_from_slice(&kmer[..k - 1]);
    BASES
        .iter()
        .copied()
        .filter(|&b| {
            buf[0] = b;
            s.contains(buf)
        })
        .collect()
}

/// Extract the unitigs of the spectrum's de Bruijn graph, deterministically
/// (start k-mers are processed in lexicographic order). Every k-mer lands
/// in exactly one contig; pure cycles are broken at their smallest k-mer.
pub fn generate_contigs(spectrum: &KmerSpectrum) -> Vec<Vec<u8>> {
    let k = spectrum.k;
    let mut kmers: Vec<&[u8]> = spectrum.iter().map(|(km, _)| km).collect();
    kmers.sort_unstable();

    let mut visited: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    let mut contigs = Vec::new();
    let mut buf = Vec::with_capacity(k);

    // Pass 1: walks from genuine path starts.
    for &start in &kmers {
        if visited.contains(start) {
            continue;
        }
        let preds = predecessors(spectrum, start, &mut buf);
        let is_start = match preds.as_slice() {
            [p] => {
                // Unique predecessor: start only if it branches out.
                let mut pred = Vec::with_capacity(k);
                pred.push(*p);
                pred.extend_from_slice(&start[..k - 1]);
                successors(spectrum, &pred, &mut buf).len() != 1
            }
            _ => true, // 0 or ≥2 predecessors
        };
        if !is_start {
            continue;
        }
        contigs.push(walk_unitig(spectrum, start, &mut visited, &mut buf));
    }

    // Pass 2: anything left is on a pure cycle; break it at the smallest
    // unvisited k-mer.
    for &start in &kmers {
        if !visited.contains(start) {
            contigs.push(walk_unitig(spectrum, start, &mut visited, &mut buf));
        }
    }
    contigs
}

fn walk_unitig(
    spectrum: &KmerSpectrum,
    start: &[u8],
    visited: &mut std::collections::HashSet<Vec<u8>>,
    buf: &mut Vec<u8>,
) -> Vec<u8> {
    let mut contig = start.to_vec();
    visited.insert(start.to_vec());
    let mut window = start.to_vec();

    loop {
        let succ = successors(spectrum, &window, buf);
        let [b] = succ.as_slice() else { break };
        let mut next = window[1..].to_vec();
        next.push(*b);
        // The successor must be unambiguous in-degree-1 and unvisited.
        if predecessors(spectrum, &next, buf).len() != 1 {
            break;
        }
        if !visited.insert(next.clone()) {
            break;
        }
        contig.push(*b);
        window = next;
    }
    contig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::Read;

    fn spectrum_of(seqs: &[&[u8]], k: usize, min: u32) -> KmerSpectrum {
        let reads: Vec<Read> = seqs.iter().map(|s| Read::with_uniform_qual(s, b'I')).collect();
        let mut s = KmerSpectrum::build(&reads, k);
        s.filter(min);
        s
    }

    #[test]
    fn perfect_coverage_yields_the_genome() {
        // All 5-mers of a repeat-free sequence → one contig = the sequence.
        let genome = b"ACGATTGCCATAGGCTTACG";
        let s = spectrum_of(&[genome], 5, 1);
        let contigs = generate_contigs(&s);
        assert_eq!(contigs.len(), 1, "{contigs:?}");
        assert_eq!(contigs[0], genome);
    }

    #[test]
    fn fork_splits_contigs() {
        // Two sequences sharing a prefix: the graph forks where they
        // diverge, producing a shared prefix contig + two branch contigs.
        let a = b"AAACCCGTTTT";
        let b = b"AAACCCGAAGG";
        let s = spectrum_of(&[a, b], 4, 1);
        let contigs = generate_contigs(&s);
        assert!(contigs.len() >= 3, "{contigs:?}");
        // Every contig is a substring of one of the inputs.
        for c in &contigs {
            assert!(
                a.windows(c.len()).any(|w| w == c.as_slice())
                    || b.windows(c.len()).any(|w| w == c.as_slice()),
                "contig {:?} not found",
                String::from_utf8_lossy(c)
            );
        }
        // Jointly, the contigs carry every k-mer exactly once.
        let total_kmers: usize = contigs.iter().map(|c| c.len() - 3).sum();
        assert_eq!(total_kmers, s.distinct());
    }

    #[test]
    fn error_filtering_rescues_the_contig() {
        // Deep coverage + one erroneous read: unfiltered, the error forks
        // the graph mid-sequence; filtered, one clean contig remains.
        let genome = b"ACGATTGCCATAGGCTTACGGATC";
        let mut bad = genome.to_vec();
        bad[10] = b'C'; // T→C
        let mut seqs: Vec<&[u8]> = vec![genome; 5];
        seqs.push(&bad);

        let noisy = spectrum_of(&seqs, 7, 1);
        let noisy_contigs = generate_contigs(&noisy);
        assert!(noisy_contigs.len() > 1, "error must fragment the graph");

        let clean = spectrum_of(&seqs, 7, 2);
        let clean_contigs = generate_contigs(&clean);
        assert_eq!(clean_contigs.len(), 1);
        assert_eq!(clean_contigs[0], genome);
    }

    #[test]
    fn cycle_is_emitted_once() {
        // "ACGACGACG…" at k=3: the 3-mers {ACG, CGA, GAC} form a cycle.
        let s = spectrum_of(&[b"ACGACGACGACG"], 3, 1);
        let contigs = generate_contigs(&s);
        // All three k-mers appear exactly once across the output.
        let total_kmers: usize = contigs.iter().map(|c| c.len() - 2).sum();
        assert_eq!(total_kmers, 3, "{contigs:?}");
    }

    #[test]
    fn empty_spectrum_no_contigs() {
        let s = spectrum_of(&[b"AC"], 5, 1);
        assert!(generate_contigs(&s).is_empty());
    }

    #[test]
    fn deterministic_output() {
        let seqs: [&[u8]; 2] = [b"AAACCCGTTTTGGAT", b"AAACCCGAAGGTCA"];
        let a = generate_contigs(&spectrum_of(&seqs, 4, 1));
        let b = generate_contigs(&spectrum_of(&seqs, 4, 1));
        assert_eq!(a, b);
    }
}
